"""Warm-vs-cold synthesis service benchmark.

Run directly (writes ``BENCH_service.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_service.py

Starts a real :class:`~repro.serve.server.SynthesisServer` (loopback
TCP, one worker) and times ``synthesize`` requests end to end, as a
client sees them:

* **cold** — requests whose function name (hence session-cache base
  key) the server has never seen: the engine builds its component pool
  from scratch. Best of ``REPS`` distinct names.
* **warm** — the same program repeated: the session released by the
  previous request is checked out of the cache and every TDS iteration
  for the held example prefix is skipped. Best of ``REPS`` repeats;
  every one must report ``cache.hit``.

``service_strings.speedup`` (cold/warm) is hard-floored at 2.0 by
``benchmarks/check_regression.py`` — the whole point of the service
layer is that repeated requests don't pay the cold build, and this is
the gate that keeps it true.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
from time import perf_counter

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not os.environ.get("PYTHONPATH") or "repro" not in sys.modules:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

REPS = 3

# The strings slice: trim + constant-suffix concatenation over enough
# examples that the cold pool build does real enumeration work.
_PROGRAM = """
language strings;
function string {name}(string s);
require {name}("  hello ") == "hello!";
require {name}("ab") == "ab!";
require {name}(" xyz") == "xyz!";
require {name}("synthesis ") == "synthesis!";
"""


def _start_server():
    """The server on a background thread; returns (port, shutdown)."""
    from repro.serve.server import ServerConfig, SynthesisServer

    config = ServerConfig(port=0, max_workers=1, default_timeout_s=60.0)
    ready = threading.Event()
    state = {}

    def run() -> None:
        async def main() -> None:
            server = SynthesisServer(config)
            await server.start()
            state["port"] = server.address[1]
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, name="bench-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("server failed to start")

    def shutdown() -> None:
        from repro.serve.client import request

        request({"op": "shutdown"}, port=state["port"], timeout=10)
        thread.join(timeout=10)

    return state["port"], shutdown


def _synthesize(port: int, name: str):
    """One request; returns (round_trip_seconds, response)."""
    from repro.serve.client import request

    payload = {
        "id": name,
        "op": "synthesize",
        "program": _PROGRAM.format(name=name),
    }
    start = perf_counter()
    response = request(payload, port=port, timeout=120, check=True)
    elapsed = perf_counter() - start
    if not response.get("success"):
        raise RuntimeError(f"synthesis failed for {name}: {response}")
    return elapsed, response


def bench_service(port: int):
    cold_times = []
    for rep in range(REPS):
        elapsed, response = _synthesize(port, f"cold{rep}")
        info = response["cache"][f"cold{rep}"]
        assert not info["hit"], "distinct name must miss the cache"
        cold_times.append(elapsed)
        print(f"  cold #{rep}: {elapsed * 1000:.1f}ms")

    # Seed the warm entry, then time pure repeats.
    _synthesize(port, "warm")
    warm_times = []
    for rep in range(REPS):
        elapsed, response = _synthesize(port, "warm")
        info = response["cache"]["warm"]
        assert info["hit"], "repeat must hit the cache"
        assert info["reused_examples"] == 4
        warm_times.append(elapsed)
        print(f"  warm #{rep}: {elapsed * 1000:.1f}ms  (cache hit)")

    cold = min(cold_times)
    warm = min(warm_times)
    speedup = round(cold / warm, 1)
    print(f"  speedup (best cold / best warm): {speedup}x")
    return {
        "examples": 4,
        "reps": REPS,
        "cold_seconds": round(cold, 6),
        "warm_seconds": round(warm, 6),
        "speedup": speedup,
    }


def main():
    print("synthesis service, warm vs cold (loopback TCP, 1 worker):")
    port, shutdown = _start_server()
    try:
        service_strings = bench_service(port)
    finally:
        shutdown()
    payload = {
        "service_strings": service_strings,
        "host": {
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
        },
    }
    out = os.path.join(_ROOT, "BENCH_service.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
