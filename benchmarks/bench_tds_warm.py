"""Warm-vs-cold TDS benchmark: the persistent cross-iteration component
pool (the engine's :class:`~repro.core.engine.session.SynthesisSession`)
against per-iteration pool rebuilds.

Run directly (writes ``BENCH_tds_warm.json`` at the repo root, which
docs/performance.md and docs/architecture.md reference)::

    PYTHONPATH=src python benchmarks/bench_tds_warm.py

Three sections:

* ``tds_warm`` — the headline: one TDS loop over a 9-example piecewise
  arithmetic sequence (three regions, so the mid-sequence iterations
  must re-synthesize nested conditionals), run cold
  (``TdsOptions(reuse_pool=False)``: every DBS call rebuilds the pool
  from scratch, the pre-engine behavior) and warm (the default: one
  pool follows the whole sequence, widened by each appended example).
  Per-iteration wall time, success, and the engine's lifetime
  ``pool.entries_*`` reuse totals are reported; the ``speedup`` field
  is best-cold over best-warm total wall time.
* ``trace`` — one extra warm run under a ``JsonlTracer``, reading the
  ``pool.extend`` spans back out of the trace: demonstrates that the
  reuse counters (``pool.entries_reused`` etc.) actually reach the
  observability layer end to end.
* ``pool_extend`` — the storage layer alone:
  ``PoolStore.extend_examples`` + re-seed on an already-enumerated
  store vs building an equivalent store cold on the widened example
  list. (Entry counts differ by design: extension *forgets* entries
  mentioning constants the new iteration no longer derives —
  Algorithm 1's stale-component forgetting — and enumeration
  re-derives the foldable ones a generation later.)
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from time import perf_counter

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not os.environ.get("PYTHONPATH") or "repro" not in sys.modules:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

REPS = 2  # TDS runs per mode; best total wins (cancels scheduler noise)
BUDGET_EXPRESSIONS = 60_000  # per-DBS; binds on the forced-failure steps
BUDGET_SECONDS = 60.0
MICRO_GENERATIONS = 2


def _arith_dsl():
    """A conditional arithmetic DSL (the test suite's `arith` shape,
    plus Mul so the pool grows fast enough for rebuild cost to show)."""
    from repro.core.dsl import DslBuilder
    from repro.core.types import BOOL, INT

    b = DslBuilder("arith", start="P")
    b.nt("P", INT).nt("e", INT).nt("b", BOOL)
    b.conditional("P", guard_nt="b", branch_nt="e")
    b.fn("e", "Neg", ["e"], lambda v: -v)
    b.fn("e", "Add", ["e", "e"], lambda a, c: a + c)
    b.fn("e", "Mul", ["e", "e"], lambda a, c: a * c)
    b.fn("b", "Lt", ["e", "e"], lambda a, c: a < c)
    b.param("e")
    b.constant("e")
    b.constants_from(lambda examples: {"e": [0, 1, 2]})
    return b.build()


def _task():
    """f(x) = -x if x < 0 else x*x if x < 2 else x + 1, ordered so TDS
    must synthesize a conditional mid-sequence and refine it twice."""
    from repro.core.dsl import Example, Signature
    from repro.core.types import INT

    examples = [
        Example((3,), 4),
        Example((5,), 6),
        Example((-4,), 4),
        Example((-9,), 9),
        Example((1,), 1),
        Example((0,), 0),
        Example((7,), 8),
        Example((-2,), 2),
        Example((2,), 3),
    ]
    return Signature("f", (("x", INT),), INT), examples


def _run_tds(reuse_pool):
    from repro.core.budget import Budget
    from repro.core.tds import TdsOptions, TdsSession

    signature, examples = _task()
    session = TdsSession(
        signature,
        _arith_dsl(),
        budget_factory=lambda: Budget(
            max_seconds=BUDGET_SECONDS, max_expressions=BUDGET_EXPRESSIONS
        ),
        options=TdsOptions(reuse_pool=reuse_pool),
    )
    iterations = []
    start = perf_counter()
    for example in examples:
        t0 = perf_counter()
        step = session.add_example(example)
        iterations.append(
            {
                "action": step.action,
                "seconds": round(perf_counter() - t0, 4),
                "expressions": step.expressions,
            }
        )
    result = session.finalize()
    total = perf_counter() - start
    reuse_totals = (
        dict(session._engine.reuse_totals) if session._engine else None
    )
    return total, iterations, result.success, reuse_totals


def bench_tds_warm():
    modes = {}
    for label, reuse in (("cold", False), ("warm", True)):
        totals = []
        best = None
        for _ in range(REPS):
            total, iterations, success, reuse_totals = _run_tds(reuse)
            totals.append(round(total, 3))
            if best is None or total < best[0]:
                best = (total, iterations, success, reuse_totals)
        total, iterations, success, reuse_totals = best
        n = len(iterations)
        modes[label] = {
            "best_seconds": round(total, 3),
            "totals_seconds": totals,
            "per_iteration_seconds": round(total / n, 4),
            "success": success,
            "iterations": iterations,
        }
        if reuse_totals is not None:
            modes[label]["reuse_totals"] = reuse_totals
        print(
            f"  {label:4s}: best {total:.2f}s over {n} examples "
            f"({total / n:.3f}s/iter), success={success}"
            + (f", reuse={reuse_totals}" if reuse_totals else "")
        )
    speedup = round(
        modes["cold"]["best_seconds"] / modes["warm"]["best_seconds"], 2
    )
    print(f"  warm speedup: {speedup}x")
    signature, examples = _task()
    return {
        "task": "piecewise-arith-3-regions",
        "examples": len(examples),
        "budget_expressions": BUDGET_EXPRESSIONS,
        "cold": modes["cold"],
        "warm": modes["warm"],
        "speedup": speedup,
    }


def bench_traced_warm():
    """One warm run under a tracer; read the pool.extend spans back."""
    from repro.obs import JsonlTracer, tracing
    from repro.obs.report import load_events

    fd, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    try:
        tracer = JsonlTracer(path)
        with tracing(tracer):
            _, _, success, _ = _run_tds(True)
        tracer.flush()
        extends = [
            event
            for event in load_events(path)
            if event.get("kind") == "span"
            and event.get("name") == "pool.extend"
        ]
    finally:
        os.remove(path)
    reused = sum(
        int((event.get("attrs") or {}).get("reused", 0)) for event in extends
    )
    print(
        f"  traced warm run: {len(extends)} pool.extend spans, "
        f"{reused} entries reused, success={success}"
    )
    return {
        "pool_extend_spans": len(extends),
        "entries_reused": reused,
        "success": success,
    }


def _build_pool(dsl, signature, examples):
    from repro.core.budget import Budget
    from repro.core.dbs import DbsStats
    from repro.core.engine import Enumerator, PoolStore

    stats = DbsStats()
    budget = Budget(max_seconds=300.0, max_expressions=10**9)
    pool = PoolStore(
        dsl,
        signature,
        list(examples),
        budget=budget,
        metrics=stats.registry,
    )
    enumerator = Enumerator(pool)
    enumerator.seed([])
    for _ in range(MICRO_GENERATIONS):
        enumerator.advance()
    return pool, enumerator, stats


def bench_pool_extend():
    from repro.core.budget import Budget

    signature, examples = _task()
    examples = examples[:6]
    dsl = _arith_dsl()

    start = perf_counter()
    cold_pool, _, _ = _build_pool(dsl, signature, examples)
    cold_seconds = perf_counter() - start

    pool, enumerator, stats = _build_pool(dsl, signature, examples[:-1])
    start = perf_counter()
    pool.bind(
        stats.registry,
        Budget(max_seconds=300.0, max_expressions=10**9),
    )
    report = pool.extend_examples(examples[-1:], seeds=())
    enumerator.seed([])
    extend_seconds = perf_counter() - start

    speedup = round(cold_seconds / extend_seconds, 1)
    print(
        f"  cold build ({len(examples)} examples, "
        f"{MICRO_GENERATIONS} generations): {cold_seconds * 1000:.1f}ms, "
        f"{cold_pool.total()} entries"
    )
    print(
        f"  extend by 1 example: {extend_seconds * 1000:.1f}ms, "
        f"{pool.total()} entries, {speedup}x  ({report})"
    )
    return {
        "examples": len(examples),
        "generations": MICRO_GENERATIONS,
        "cold_build_ms": round(cold_seconds * 1000, 2),
        "cold_entries": cold_pool.total(),
        "extend_ms": round(extend_seconds * 1000, 2),
        "extend_entries": pool.total(),
        "extend_report": report,
        "speedup": speedup,
    }


def main():
    print("tds warm vs cold (persistent pool across the example sequence):")
    tds_warm = bench_tds_warm()
    print("warm run under a tracer (pool.extend spans):")
    trace = bench_traced_warm()
    print("pool extend_examples microbenchmark:")
    pool_extend = bench_pool_extend()
    payload = {
        "tds_warm": tds_warm,
        "trace": trace,
        "pool_extend": pool_extend,
        "host": {
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
        },
    }
    out = os.path.join(_ROOT, "BENCH_tds_warm.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
