"""A1 — the §5.1 DSL-size limit, with/without the optimizations."""

from repro.experiments import dslsize


def test_a1_dsl_size_limit(benchmark, config):
    result = benchmark.pedantic(
        lambda: dslsize.run(config), rounds=1, iterations=1
    )
    print()
    print(dslsize.report(result))
    # Paper shape: optimizations raise the usable DSL size (40-50 vs
    # 20-30 rules there; the crossover, not the absolute, is the claim).
    assert result.limit(True) >= result.limit(False)
    assert result.limit(True) >= 20
