"""Sharded-DBS benchmark: one synthesis run split across worker cores.

Run directly (writes ``BENCH_shard.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_shard.py

Times an enumeration-dominated slice of the E1 strings suite end to end
twice — serially, then with each DBS generation sharded across
``JOBS`` worker processes (``DbsOptions.shard_jobs``) — and records
the summed wall-clock of each plus their ratio as ``shard.speedup``.

The honesty guards:

* every task's sharded program must be **byte-identical** to its serial
  program (the determinism contract of ``core.engine.shard``; the run
  aborts otherwise), so the speedup can never come from admitting a
  different pool;
* the host CPU count is recorded under ``host.cpus``.
  ``check_regression.py`` holds ``shard.speedup`` to a hard floor of
  1.5 *only* on hosts with at least ``JOBS`` cores — a single-core
  container can regenerate this file honestly (sharding loses there;
  process round-trips buy no parallelism) without faking the gate,
  while the CI leg that has the cores enforces it.
"""

from __future__ import annotations

import gc
import json
import os
import sys
from time import perf_counter

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not os.environ.get("PYTHONPATH") or "repro" not in sys.modules:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

JOBS = 4
REPS = 2  # timed reps per config; best rep wins, after a warm-up pass
# Enumeration-heavy E1 tasks (enumeration is 87-100% of their serial
# wall-clock), where splitting the candidate stream can actually pay;
# summed wall-clock damps per-task scheduler noise.
BENCHES = ["bib-venue", "prefix-lines", "reverse-string", "surname-initial"]


def _options(jobs):
    from repro.core.dbs import DbsOptions
    from repro.core.tds import TdsOptions

    return TdsOptions(dbs=DbsOptions(shard_jobs=jobs))


def bench_shard():
    from repro.core.budget import Budget
    from repro.suites import ALL_SUITES

    benchmarks = [
        next(b for b in ALL_SUITES["strings"] if b.name == name)
        for name in BENCHES
    ]
    budget = lambda: Budget(max_seconds=120, max_expressions=2_000_000)
    best = {0: float("inf"), JOBS: float("inf")}
    programs = {0: None, JOBS: None}
    # Interleave the configs so both sample the same allocator/GC
    # state; a warm-up rep (discarded) pays one-time imports.
    for rep in range(REPS + 1):
        for jobs in (0, JOBS):
            options = _options(jobs)
            gc.collect()
            start = perf_counter()
            solved = []
            for benchmark in benchmarks:
                result = benchmark.run(
                    budget_factory=budget, options=options
                )
                assert result.success, (
                    f"{benchmark.name} failed with jobs={jobs}"
                )
                solved.append(
                    sorted(str(fn) for fn in result.functions.values())
                )
            elapsed = perf_counter() - start
            if programs[jobs] is None:
                programs[jobs] = solved
            else:
                assert programs[jobs] == solved, "nondeterministic rep"
            if rep:
                best[jobs] = min(best[jobs], elapsed)
    assert programs[JOBS] == programs[0], (
        "sharded programs diverged from serial — determinism violation"
    )
    serial, sharded = best[0], best[JOBS]
    print(f"  serial:            {serial:.2f}s")
    print(f"  sharded (jobs={JOBS}): {sharded:.2f}s")
    speedup = round(serial / sharded, 2)
    print(f"  speedup: {speedup}x on {os.cpu_count()} cpus")
    return {
        "benchmarks": BENCHES,
        "jobs": JOBS,
        "serial_seconds": round(serial, 3),
        "shard_seconds": round(sharded, 3),
        "speedup": speedup,
    }


def main():
    print(f"sharded DBS ({len(BENCHES)} E1 benchmarks, "
          f"serial vs {JOBS} workers):")
    shard = bench_shard()
    payload = {
        "shard": shard,
        "host": {
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
        },
    }
    out = os.path.join(_ROOT, "BENCH_shard.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
