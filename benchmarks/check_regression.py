"""Benchmark regression gate: compare freshly-generated benchmark JSON
against the committed baseline and fail CI on a slowdown.

Usage::

    PYTHONPATH=src python benchmarks/bench_eval.py          # writes BENCH_eval.json
    python benchmarks/check_regression.py BASELINE CURRENT  # e.g. the
        # git-committed BENCH_eval.json vs the regenerated one

Only metric keys are compared — ``*_ops_per_sec`` and ``speedup`` must
not drop, ``*_seconds`` / ``*_ms`` must not grow. Environment
descriptors (``host``) and raw per-iteration/per-rep samples
(``iterations``, ``totals_seconds``) are ignored: they describe the
run, they aren't the contract. The default tolerance is 25% — generous
because CI runners are noisy — and can be overridden with
``REPRO_BENCH_TOLERANCE`` (a fraction, e.g. ``0.4``).

A key present in the baseline but missing from the regenerated file is
an error: renaming a metric requires re-committing the baseline in the
same change.

On top of the relative comparison, ``HARD_FLOORS`` pins absolute
minimums for metrics that are contracts in their own right — e.g. the
batched enumerator's end-to-end strings speedup must stay ≥ 1.5×
regardless of what the committed baseline says, so the kernel-vs-e2e
gap can't silently reopen through a sequence of tolerated drops (or a
degraded baseline). Floors ignore the tolerance: they are the line, not
a target to drift toward.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Iterator, Tuple

DEFAULT_TOLERANCE = 0.25
ENV_TOLERANCE = "REPRO_BENCH_TOLERANCE"

# Subtrees that describe the run rather than benchmark performance.
SKIP_KEYS = {"host", "iterations", "totals_seconds", "tasks"}

HIGHER_BETTER_SUFFIXES = ("_ops_per_sec", "speedup")
LOWER_BETTER_SUFFIXES = ("_seconds", "_ms")

# Absolute floors (metric path -> minimum value), enforced on the
# *current* file independent of baseline and tolerance. A floor only
# applies when the metric belongs to the file under comparison (the
# gate runs once per BENCH_*.json); a floored path present in the
# baseline but missing from the current file is caught by the ordinary
# missing-metric check.
HARD_FLOORS = {
    "e2e_strings.speedup": 1.5,
    # A warm service request (session-cache hit) must beat a cold one
    # by at least 2x on the strings slice — the contract of the
    # synthesis-as-a-service layer (docs/service.md).
    "service_strings.speedup": 2.0,
}

# Floors that only hold given hardware: ``path -> (floor, min_cpus)``.
# Sharding a DBS run across 4 workers must pay at least 1.5x on the
# enumeration-heavy strings slice — but only a host that *has* 4 cores
# can be held to that. On smaller hosts the floor is skipped with a
# loud notice (never silently passed), so a single-core container can
# regenerate BENCH_shard.json honestly while the 4-core CI leg
# enforces the contract. The gated floor still participates in the
# ordinary relative comparison on every host.
CPU_GATED_FLOORS = {
    "shard.speedup": (1.5, 4),
    # The adaptive example scheduler must cut the staircase p95 by at
    # least 1.3x over FIFO (BENCH_schedule.json). The win is
    # deadline-shaping, not parallelism, so it reproduces on one core —
    # but the floor follows the same ≥4-cpu policy as the other gated
    # benches so noisy tiny hosts can regenerate the file honestly.
    "schedule.p95_speedup": (1.3, 4),
}


def effective_floors(current: dict):
    """``HARD_FLOORS`` plus every CPU-gated floor the current host
    qualifies for; returns ``(floors, skipped)`` where ``skipped``
    lists ``(path, floor, min_cpus, cpus)`` gates this host ducks."""
    floors = dict(HARD_FLOORS)
    host = current.get("host") or {}
    cpus = int(host.get("cpus") or 0)
    skipped = []
    for path, (floor, min_cpus) in sorted(CPU_GATED_FLOORS.items()):
        if cpus >= min_cpus:
            floors[path] = floor
        else:
            skipped.append((path, floor, min_cpus, cpus))
    return floors, skipped


def _direction(key: str) -> int:
    """+1 if larger is better, -1 if smaller is better, 0 if not a metric."""
    if key.endswith(HIGHER_BETTER_SUFFIXES) or key == "speedup":
        return 1
    if key.endswith(LOWER_BETTER_SUFFIXES):
        return -1
    return 0


def _walk(node, path: str = "") -> Iterator[Tuple[str, str, float]]:
    """Yield ``(path, leaf_key, value)`` for every metric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key in SKIP_KEYS:
                continue
            child = f"{path}.{key}" if path else key
            if isinstance(value, (dict, list)):
                yield from _walk(value, child)
            elif isinstance(value, (int, float)) and _direction(key):
                yield child, key, float(value)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from _walk(value, f"{path}[{index}]")


def compare(baseline: dict, current: dict, tolerance: float):
    """Return ``(regressions, missing, checked, floored, skipped)``
    comparing metric leaves; ``floored`` lists hard-floor violations
    and ``skipped`` the CPU-gated floors this host does not qualify
    to enforce."""
    current_leaves = {p: v for p, _, v in _walk(current)}
    regressions, missing, checked = [], [], []
    for path, key, base in _walk(baseline):
        if path not in current_leaves:
            missing.append(path)
            continue
        now = current_leaves[path]
        direction = _direction(key)
        if direction > 0:
            bad = now < base * (1.0 - tolerance)
        else:
            bad = now > base * (1.0 + tolerance)
        ratio = (now / base) if base else float("inf")
        checked.append((path, base, now, ratio, bad))
        if bad:
            regressions.append((path, base, now, ratio))
    floors, skipped = effective_floors(current)
    floored = [
        (path, floor, current_leaves[path])
        for path, floor in sorted(floors.items())
        if path in current_leaves and current_leaves[path] < floor
    ]
    skipped = [s for s in skipped if s[0] in current_leaves]
    return regressions, missing, checked, floored, skipped


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        print(f"usage: {argv[0]} BASELINE.json CURRENT.json", file=sys.stderr)
        return 2
    tolerance = float(os.environ.get(ENV_TOLERANCE, DEFAULT_TOLERANCE))
    with open(argv[1]) as fh:
        baseline = json.load(fh)
    with open(argv[2]) as fh:
        current = json.load(fh)

    regressions, missing, checked, floored, skipped = compare(
        baseline, current, tolerance
    )

    print(f"comparing {argv[2]} against baseline {argv[1]} "
          f"(tolerance {tolerance:.0%})")
    for path, base, now, ratio, bad in checked:
        marker = "REGRESSION" if bad else "ok"
        print(f"  {marker:>10}  {path}: {base:g} -> {now:g} ({ratio:.2f}x)")
    for path in missing:
        print(f"     MISSING  {path}: present in baseline, absent now")
    for path, floor, now in floored:
        print(f"       FLOOR  {path}: {now:g} below hard floor {floor:g}")
    for path, floor, min_cpus, cpus in skipped:
        print(
            f"     SKIPPED  {path}: hard floor {floor:g} needs "
            f">= {min_cpus} cpus, host has {cpus} — NOT enforced"
        )

    if regressions or missing or floored:
        print(
            f"FAIL: {len(regressions)} regression(s), "
            f"{len(missing)} missing metric(s), "
            f"{len(floored)} hard-floor violation(s)",
            file=sys.stderr,
        )
        return 1
    print(f"PASS: {len(checked)} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
