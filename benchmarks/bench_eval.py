"""Evaluator-engine microbenchmark: compiled closures vs. the
tree-walking interpreter, and parallel suite execution vs. serial.

Run directly (writes ``BENCH_eval.json`` at the repo root, which
docs/performance.md and EXPERIMENTS.md reference)::

    PYTHONPATH=src python benchmarks/bench_eval.py

Two sections:

* ``eval_engine`` — ops/sec evaluating fixed expressions of several
  sizes through ``expression_runner`` in both modes. The shapes mirror
  what candidate testing evaluates all day: nested arithmetic over
  parameters and constants, and string pipelines. Compilation is
  memoized per expression identity, so the compiled numbers amortize it
  exactly the way the component pool does.
* ``parallel_suite`` — wall-clock for a timeout-dominated slice of the
  Pex4Fun suite at ``--jobs 1`` vs ``--jobs 4``. The tasks are puzzles
  the paper's own failure taxonomy marks unsolvable, so every one runs
  its full wall-clock budget; with N workers those budgets expire
  concurrently instead of back to back, which is why the speedup holds
  even on a single-core host (see docs/performance.md).
"""

from __future__ import annotations

import json
import os
import sys
from time import perf_counter

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not os.environ.get("PYTHONPATH") or "repro" not in sys.modules:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

BATCH_SECONDS = 0.3  # calibration target per timing batch
REPS = 5  # batches per mode; best batch wins (cancels scheduler noise)
PARALLEL_BUDGET_SECONDS = 3.0
PARALLEL_JOBS = 4
# Unsolvable by construction (paper §6.1.4 failure categories), so each
# synthesis reliably runs its whole budget: a pure timeout workload.
TIMEOUT_PUZZLES = ["bitwise-or", "bitwise-xor", "cubic-poly", "popcount"]


def _functions():
    from repro.domains.registry import get_domain

    dsl = get_domain("pexfun").dsl()
    return {f.name: f for f in dsl.functions()}, dsl


def _exprs():
    """Fixed expressions spanning the sizes candidate testing sees."""
    from repro.core.expr import Call, Const, Param
    from repro.core.types import INT, STRING

    fns, dsl = _functions()
    int_nt = "I"  # nt labels only matter for enumeration, not evaluation
    x = Param("x", INT, int_nt)
    s = Param("s", STRING, "S")

    def chain(depth):
        expr = x
        for i in range(depth):
            fn = (fns["Add"], fns["Mul"], fns["Max"], fns["Sub"])[i % 4]
            expr = Call(fn, (expr, Const(1 + i % 7, INT, int_nt)), int_nt)
        return expr

    def string_pipe(depth):
        expr = s
        for i in range(depth):
            if i % 3 == 0:
                expr = Call(fns["Concat"], (expr, Const("-", STRING, "S")), "S")
            elif i % 3 == 1:
                expr = Call(fns["ToUpper"], (expr,), "S")
            else:
                expr = Call(fns["Trim"], (expr,), "S")
        return expr

    return [
        ("int-chain-12", chain(12), {"x": 7}),
        ("int-chain-30", chain(30), {"x": 7}),
        ("int-chain-60", chain(60), {"x": 7}),
        ("str-pipe-30", string_pipe(30), {"s": " a b c "}),
    ]


def _ops_per_sec(expr, params, mode):
    from repro.core import evaluator
    from repro.core.evaluator import Env, Fuel

    previous = evaluator.set_eval_mode(mode)
    try:
        runner = evaluator.expression_runner(expr)
        # Warm up (first compiled call pays memoized compilation) and
        # calibrate a batch size worth ~BATCH_SECONDS.
        start = perf_counter()
        runner(Env(params=params, fuel=Fuel(1_000_000)))
        once = max(perf_counter() - start, 1e-7)
        batch = max(1, int(BATCH_SECONDS / once))
        best = 0.0
        for _ in range(REPS):
            start = perf_counter()
            for _ in range(batch):
                runner(Env(params=params, fuel=Fuel(1_000_000)))
            rate = batch / (perf_counter() - start)
            if rate > best:
                best = rate
        return best
    finally:
        evaluator.set_eval_mode(previous)


def bench_eval_engine():
    rows = []
    for name, expr, params in _exprs():
        interp = _ops_per_sec(expr, params, "interp")
        compiled = _ops_per_sec(expr, params, "compiled")
        rows.append(
            {
                "expr": name,
                "nodes": expr.size,
                "interp_ops_per_sec": round(interp, 1),
                "compiled_ops_per_sec": round(compiled, 1),
                "speedup": round(compiled / interp, 2),
            }
        )
        print(
            f"  {name:14s} {expr.size:4d} nodes  "
            f"interp {interp:9.0f}/s  compiled {compiled:9.0f}/s  "
            f"{compiled / interp:.2f}x"
        )
    speedups = [r["speedup"] for r in rows]
    return {"exprs": rows, "max_speedup": max(speedups), "min_speedup": min(speedups)}


def _suite_seconds(jobs):
    from repro.experiments.common import ExperimentConfig
    from repro.experiments import pexfun_exp
    from repro.pex.puzzles import PUZZLES

    config = ExperimentConfig(
        budget_seconds=PARALLEL_BUDGET_SECONDS,
        budget_expressions=100_000_000,  # wall-clock is the binding budget
        jobs=jobs,
    )
    puzzles = [p for p in PUZZLES if p.name in TIMEOUT_PUZZLES]
    start = perf_counter()
    rows = pexfun_exp.run(config, puzzles=puzzles, try_manual=False)
    elapsed = perf_counter() - start
    assert not any(r.solved for r in rows), "timeout workload got solved?"
    return elapsed


def bench_parallel_suite():
    serial = _suite_seconds(1)
    print(f"  jobs=1: {serial:.1f}s")
    parallel = _suite_seconds(PARALLEL_JOBS)
    print(f"  jobs={PARALLEL_JOBS}: {parallel:.1f}s")
    return {
        "tasks": TIMEOUT_PUZZLES,
        "budget_seconds": PARALLEL_BUDGET_SECONDS,
        "jobs1_seconds": round(serial, 2),
        f"jobs{PARALLEL_JOBS}_seconds": round(parallel, 2),
        "speedup": round(serial / parallel, 2),
    }


def main():
    print("eval engine (compiled vs interpreter):")
    eval_engine = bench_eval_engine()
    print(f"parallel suite ({len(TIMEOUT_PUZZLES)} timeout-bound tasks):")
    parallel_suite = bench_parallel_suite()
    payload = {
        "eval_engine": eval_engine,
        "parallel_suite": parallel_suite,
        "host": {
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
        },
    }
    out = os.path.join(_ROOT, "BENCH_eval.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
