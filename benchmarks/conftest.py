"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series; EXPERIMENTS.md records the shape
comparison against the paper. Budgets default to the FAST configuration
so the whole harness completes on a laptop; set REPRO_BENCH_FULL=1 for
paper-scale budgets.
"""

import os

import pytest

from repro.experiments.common import FAST, FULL


@pytest.fixture(scope="session")
def config():
    return FULL if os.environ.get("REPRO_BENCH_FULL") else FAST
