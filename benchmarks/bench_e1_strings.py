"""E1 — §6.1.1 string transformations (TDS vs FlashFill vs Sketch-like)."""

from repro.experiments import strings_exp


def test_e1_string_transformations(benchmark, config):
    rows = benchmark.pedantic(
        lambda: strings_exp.run(config, include_sketch=True, sketch_seconds=6),
        rounds=1,
        iterations=1,
    )
    print()
    print(strings_exp.report(rows))
    solved = sum(r.tds_solved for r in rows)
    flashfill = sum(r.flashfill_solved for r in rows)
    sketch = sum(r.sketch_solved for r in rows)
    # Paper shape: TDS solves (nearly) everything, strictly more than
    # FlashFill (which is sub-second where it applies); Sketch none.
    assert solved >= 12
    assert flashfill < solved
    assert all(
        r.flashfill_seconds < 2.0 for r in rows if r.flashfill_solved
    )
    assert sketch <= 2
