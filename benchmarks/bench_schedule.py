"""Example-scheduling benchmark: p50/p95 task latency per scheduler.

Run directly (writes ``BENCH_schedule.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_schedule.py

Times a task mix — fast strings-suite and Pex4Fun tasks plus two
"staircase" tasks engineered to reproduce the known FIFO p95 pathology
— under each shipped scheduler (``fifo``, ``adaptive``,
``representative``), interleaving the schedulers inside each rep so
they sample the same allocator/GC state, and records the p50/p95 of
the per-task latencies plus the fifo/adaptive ratios.

The staircase tasks are the honest core of the p95 story: a
mid-sequence example needs a conditional the branch budget does not
allow yet, so its DBS call deterministically burns the whole per-DBS
soft budget under FIFO, while the adaptive scheduler caps the
iteration at a share of the remaining session wall (``timeout_s``),
lets the cheap trailing examples grow the branch budget, and ends up
solving the same task in a fraction of the wall-clock. The speedup
comes from deadline shaping, not parallelism — it reproduces on one
core — but ``host.cpus`` is still recorded and ``check_regression.py``
holds ``schedule.p95_speedup`` to its 1.3x floor only on hosts with at
least 4 CPUs, matching the policy of the other gated benches.

Honesty guards:

* on the timeout-free (easy) tasks, the adaptive run's programs must
  be byte-identical to FIFO's (the all-admitting correctness bar;
  ``tests/test_schedule.py`` holds it across domains and enum modes);
* every scheduler must *solve* every task — a scheduler that went fast
  by failing would abort the bench;
* the staircase walls are wide enough that FIFO also succeeds: the
  comparison is solved-vs-solved latency, never success-vs-failure.
"""

from __future__ import annotations

import gc
import json
import math
import os
import sys
from time import perf_counter

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not os.environ.get("PYTHONPATH") or "repro" not in sys.modules:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

REPS = 2  # timed reps per scheduler; best rep per task wins
SCHEDULES = ["fifo", "adaptive", "representative"]
EASY_STRINGS = [
    "extract-domain",
    "initials",
    "last-word",
    "drop-extension",
    "two-digit-year",
]
EASY_PEX = ["max-of-two", "clamp-nonnegative", "sign"]

# Staircase pathology knobs: per-DBS soft budget (what a FIFO timeout
# iteration burns) and the session wall the adaptive caps are shares of.
HARD_DBS_BUDGET_S = 5.0
HARD_WALL_S = 8.0


def _staircase_dsl():
    from repro.core.dsl import DslBuilder
    from repro.core.types import BOOL, INT

    b = DslBuilder("sched-stair", start="P")
    b.nt("P", INT).nt("e", INT).nt("b", BOOL)
    b.conditional("P", guard_nt="b", branch_nt="e")
    b.fn("e", "Neg", ["e"], lambda v: -v)
    b.fn("e", "Add", ["e", "e"], lambda a, c: a + c)
    b.fn("b", "Lt", ["e", "e"], lambda a, c: a < c)
    b.param("e")
    b.constant("e")
    b.constants_from(lambda examples: {"e": [0, 1]})
    return b.build()


def _hard_tasks():
    """Two staircase tasks: the mid-sequence example needs a second
    branch, so its iteration times out until later examples grow the
    budget. ``(name, examples)``; both end satisfied under every
    scheduler."""
    from repro.core.dsl import Example

    return [
        (
            "stair-abs-double",
            [
                Example((3,), 6),
                Example((-4,), 4),
                Example((-9,), 9),
                Example((5,), 10),
            ],
        ),
        (
            "stair-relu",
            [
                Example((3,), 3),
                Example((-4,), 0),
                Example((-7,), 0),
                Example((5,), 5),
            ],
        ),
    ]


def _run_easy_strings(name, schedule):
    from repro.core.budget import Budget
    from repro.core.tds import TdsOptions
    from repro.suites import ALL_SUITES

    benchmark = next(b for b in ALL_SUITES["strings"] if b.name == name)
    result = benchmark.run(
        budget_factory=lambda: Budget(
            max_seconds=20, max_expressions=250_000
        ),
        options=TdsOptions(schedule=schedule),
    )
    assert result.success, f"{name} failed under {schedule}"
    return {
        fn: str(r.program) for fn, r in result.results.items()
    }


def _run_easy_pex(name, schedule):
    from repro.core.budget import Budget
    from repro.core.tds import TdsOptions
    from repro.pex import PUZZLES, play

    puzzle = next(p for p in PUZZLES if p.name == name)
    result = play(
        puzzle,
        budget_factory=lambda: Budget(max_seconds=8, max_expressions=80_000),
        options=TdsOptions(schedule=schedule),
    )
    assert result.solved, f"pex {name} failed under {schedule}"
    return {name: str(result.program)}


def _run_hard(examples, schedule):
    from repro.core.budget import Budget
    from repro.core.dsl import Signature
    from repro.core.tds import TdsOptions, TdsSession
    from repro.core.types import INT

    session = TdsSession(
        Signature("f", (("x", INT),), INT),
        _staircase_dsl(),
        budget_factory=lambda: Budget(
            max_seconds=HARD_DBS_BUDGET_S, max_expressions=50_000_000
        ),
        options=TdsOptions(schedule=schedule, timeout_s=HARD_WALL_S),
    )
    for example in examples:
        session.feed(example)
    result = session.finalize()
    assert result.success, f"staircase failed under {schedule}"
    return {"f": str(result.program)}


def _percentile(samples, q):
    ordered = sorted(samples)
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[index]


def bench_schedule():
    tasks = (
        [("strings:" + n, lambda s, n=n: _run_easy_strings(n, s))
         for n in EASY_STRINGS]
        + [("pex:" + n, lambda s, n=n: _run_easy_pex(n, s))
           for n in EASY_PEX]
        + [("hard:" + n, lambda s, ex=ex: _run_hard(ex, s))
           for n, ex in _hard_tasks()]
    )
    easy = {name for name, _ in tasks if not name.startswith("hard:")}
    best = {s: {name: float("inf") for name, _ in tasks} for s in SCHEDULES}
    programs = {s: {} for s in SCHEDULES}
    # Warm-up: pay one-time imports/domain builds outside the timings.
    for schedule in SCHEDULES:
        tasks[0][1](schedule)
    for rep in range(REPS):
        for schedule in SCHEDULES:
            for name, run in tasks:
                gc.collect()
                start = perf_counter()
                solved = run(schedule)
                elapsed = perf_counter() - start
                best[schedule][name] = min(
                    best[schedule][name], elapsed
                )
                previous = programs[schedule].get(name)
                if previous is not None:
                    assert previous == solved, (
                        f"nondeterministic rep: {name} under {schedule}"
                    )
                programs[schedule][name] = solved
    for name in sorted(easy):
        # The all-admitting correctness bar, as a bench-level guard:
        # timeout-free adaptive runs are byte-identical to fifo.
        assert programs["adaptive"][name] == programs["fifo"][name], (
            f"adaptive diverged from fifo on timeout-free task {name}"
        )
    out = {"tasks": [name for name, _ in tasks], "reps": REPS,
           "hard_wall_s": HARD_WALL_S}
    for schedule in SCHEDULES:
        latencies = list(best[schedule].values())
        p50 = _percentile(latencies, 0.50)
        p95 = _percentile(latencies, 0.95)
        out[f"{schedule}_p50_seconds"] = round(p50, 3)
        out[f"{schedule}_p95_seconds"] = round(p95, 3)
        print(f"  {schedule:>14}: p50 {p50:.3f}s  p95 {p95:.3f}s")
    out["p50_speedup"] = round(
        out["fifo_p50_seconds"] / out["adaptive_p50_seconds"], 2
    )
    out["p95_speedup"] = round(
        out["fifo_p95_seconds"] / out["adaptive_p95_seconds"], 2
    )
    print(
        f"  fifo/adaptive speedup: p50 {out['p50_speedup']}x, "
        f"p95 {out['p95_speedup']}x on {os.cpu_count()} cpus"
    )
    return out


def main():
    print(
        f"example scheduling ({len(EASY_STRINGS)} strings + "
        f"{len(EASY_PEX)} pexfun + {len(_hard_tasks())} staircase tasks, "
        f"{', '.join(SCHEDULES)}):"
    )
    schedule = bench_schedule()
    payload = {
        "schedule": schedule,
        "host": {
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
        },
    }
    out = os.path.join(_ROOT, "BENCH_schedule.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
