"""Enumeration-engine microbenchmark: batched value-vector candidate
generation vs. the classic per-expression pipeline.

Run directly (writes ``BENCH_enum.json`` at the repo root, which
docs/performance.md and EXPERIMENTS.md reference)::

    PYTHONPATH=src python benchmarks/bench_enum.py

Two sections:

* ``enum_engine`` — candidates/sec through ``Enumerator.advance`` in
  both modes over a lambda-free string+int DSL whose fourth generation
  is budget-truncated to a fixed ~60k-candidate window, like the inner
  generations of a real search. Every candidate is charged to the
  budget identically in both modes, so ``budget.expressions / elapsed``
  is the same unit on both sides. Fresh pools per rep; best rep wins.
* ``e2e_strings`` — summed wall-clock for a slice of the E1 strings
  suite end to end in each mode, same budget, modes interleaved per
  rep, best of ``E2E_REPS`` after a discarded warm-up. Real tasks are
  dominated by testing, sampled signatures, and lambda-bearing
  productions the batched path falls back on, so the end-to-end edge
  is far smaller than the enumeration-kernel speedup.
"""

from __future__ import annotations

import json
import os
import sys
from time import perf_counter

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not os.environ.get("PYTHONPATH") or "repro" not in sys.modules:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

REPS = 3  # per mode; best rep wins (cancels scheduler noise)
# Generation 4 of the micro DSL holds >1M combinations; the expression
# budget truncates it so a rep measures a ~60k-candidate window. Both
# modes charge the budget per candidate in the same order, so they
# measure the identical candidate stream (asserted below).
GENERATIONS = 4
MICRO_BUDGET = 60_000
E2E_REPS = 2
# A slice of the E1 strings suite (solved well inside the budget by
# both modes); summed wall-clock damps per-task scheduler noise that
# would swamp any single benchmark's timing on a small host.
E2E_BENCHES = ["initials", "extract-domain", "date-reorder", "abbrev-dotted"]


def _micro_dsl():
    """Lambda-free strings+ints: every production takes the batched
    path, and the value space is small enough that later generations are
    dominated by observational duplicates — the case batching wins."""
    from repro.core.dsl import DslBuilder
    from repro.core.types import INT, STRING

    b = DslBuilder("enum-micro", start="s")
    b.nt("s", STRING).nt("n", INT)
    b.fn("s", "Concat", ["s", "s"], lambda a, c: a + c)
    b.fn("s", "Left", ["s", "n"], lambda v, n: v[:n])
    b.fn("s", "Right", ["s", "n"], lambda v, n: v[-n:] if n else "")
    b.fn("s", "Upper", ["s"], str.upper)
    b.fn("n", "Add", ["n", "n"], lambda a, c: a + c)
    b.fn("n", "Len", ["s"], len)
    b.param("s")
    b.param("n")
    b.constants_from(lambda examples: {"s": ["-", "."], "n": [1, 2]})
    return b.build()


def _micro_examples():
    from repro.core.dsl import Example

    return [
        Example(("alpha.beta", 3), "ALP"),
        Example(("x.y", 1), "X"),
        Example(("hello.world", 5), "HELLO"),
    ]


def _cands_per_sec(mode):
    from repro.core.budget import Budget
    from repro.core.dbs import DbsStats
    from repro.core.dsl import Signature
    from repro.core.engine import Enumerator, PoolStore
    from repro.core.types import INT, STRING

    signature = Signature("f", (("s", STRING), ("n", INT)), STRING)
    dsl = _micro_dsl()
    examples = _micro_examples()
    best = 0.0
    candidates = 0
    for _ in range(REPS):
        budget = Budget(max_seconds=600.0, max_expressions=MICRO_BUDGET)
        pool = PoolStore(
            dsl,
            signature,
            list(examples),
            budget=budget,
            metrics=DbsStats().registry,
        )
        enumerator = Enumerator(pool, enum_mode=mode)
        enumerator.seed([])
        start = perf_counter()
        for _ in range(GENERATIONS):
            enumerator.advance()
        elapsed = perf_counter() - start
        candidates = budget.expressions
        rate = candidates / elapsed
        if rate > best:
            best = rate
    return best, candidates


def bench_enum_engine():
    classic, cands = _cands_per_sec("classic")
    print(f"  classic: {classic:9.0f} cands/s  ({cands} candidates)")
    batched, cands_b = _cands_per_sec("batched")
    print(f"  batched: {batched:9.0f} cands/s  ({cands_b} candidates)")
    assert cands == cands_b, "modes enumerated different candidate counts"
    return {
        "generations": GENERATIONS,
        "candidates": cands,
        "classic_ops_per_sec": round(classic, 1),
        "batched_ops_per_sec": round(batched, 1),
        "speedup": round(batched / classic, 2),
    }


def bench_e2e_strings():
    import gc

    from repro.core.budget import Budget
    from repro.core.dbs import DbsOptions
    from repro.core.tds import TdsOptions
    from repro.suites import ALL_SUITES

    benchmarks = [
        next(b for b in ALL_SUITES["strings"] if b.name == name)
        for name in E2E_BENCHES
    ]
    budget = lambda: Budget(max_seconds=60, max_expressions=250_000)
    best = {"classic": float("inf"), "batched": float("inf")}
    # Interleave the modes so both sample the same allocator/GC state;
    # a warm-up rep (discarded) pays one-time imports and compilation.
    for rep in range(E2E_REPS + 1):
        for mode in ("classic", "batched"):
            options = TdsOptions(dbs=DbsOptions(enum_mode=mode))
            gc.collect()
            start = perf_counter()
            for benchmark in benchmarks:
                result = benchmark.run(budget_factory=budget, options=options)
                assert result.success, (
                    f"{benchmark.name} failed in {mode} mode"
                )
            elapsed = perf_counter() - start
            if rep:
                best[mode] = min(best[mode], elapsed)
    classic, batched = best["classic"], best["batched"]
    print(f"  classic: {classic:.2f}s")
    print(f"  batched: {batched:.2f}s")
    return {
        "benchmarks": E2E_BENCHES,
        "classic_seconds": round(classic, 3),
        "batched_seconds": round(batched, 3),
        "speedup": round(classic / batched, 2),
    }


def main():
    print("enum engine (batched vs classic candidates/sec):")
    enum_engine = bench_enum_engine()
    print(f"e2e strings ({len(E2E_BENCHES)} E1 benchmarks):")
    e2e = bench_e2e_strings()
    payload = {
        "enum_engine": enum_engine,
        "e2e_strings": e2e,
        "host": {
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
        },
    }
    out = os.path.join(_ROOT, "BENCH_enum.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
