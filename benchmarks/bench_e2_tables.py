"""E2 — §6.1.2 table transformations (TDS vs specialized baseline)."""

from repro.experiments import tables_exp


def test_e2_table_transformations(benchmark, config):
    rows = benchmark.pedantic(
        lambda: tables_exp.run(config), rounds=1, iterations=1
    )
    print()
    print(tables_exp.report(rows))
    solved = sum(r.tds_solved for r in rows)
    specialized = sum(r.specialized_solved for r in rows)
    # Paper shape: TDS handles the full set including the normalization
    # scenarios beyond the specialized system's language.
    assert solved >= 7
    assert specialized < solved
