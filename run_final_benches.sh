#!/bin/sh
# Final benchmark sweep: regenerates every table/figure and records the
# output EXPERIMENTS.md references.
cd /root/repo
python -m pytest benchmarks/ --benchmark-only -s -q 2>&1 | tee /root/repo/bench_output.txt
