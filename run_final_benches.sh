#!/bin/sh
# Final benchmark sweep: regenerates every table/figure and records the
# output EXPERIMENTS.md references. Also runs the trace smoke job: the
# trace_smoke-marked tests assert end-to-end that a traced run's
# per-phase report agrees with its DbsStats totals and that parallel
# runs merge worker shards losslessly.
cd /root/repo
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
export PYTHONPATH
python -m pytest tests/ -m trace_smoke -q 2>&1 | tee /root/repo/trace_smoke_output.txt
python benchmarks/bench_eval.py 2>&1 | tee /root/repo/bench_eval_output.txt
python benchmarks/bench_enum.py 2>&1 | tee /root/repo/bench_enum_output.txt
python benchmarks/bench_tds_warm.py 2>&1 | tee /root/repo/bench_tds_warm_output.txt
python benchmarks/bench_service.py 2>&1 | tee /root/repo/bench_service_output.txt
python benchmarks/bench_shard.py 2>&1 | tee /root/repo/bench_shard_output.txt
python benchmarks/bench_schedule.py 2>&1 | tee /root/repo/bench_schedule_output.txt
python -m pytest benchmarks/ --benchmark-only -s -q 2>&1 | tee /root/repo/bench_output.txt
