"""Property-based tests (hypothesis) on the core invariants (DESIGN.md §6)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.contexts import contexts_of, subexpressions_of
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.evaluator import try_run
from repro.core.expr import (
    Call,
    Const,
    Function,
    Hole,
    Param,
    get_at,
    replace_at,
)
from repro.core.rewrite import Rewriter, parse_rule
from repro.core.types import BOOL, INT
from repro.core.values import ERROR, freeze, signature_key, structurally_equal
from repro.domains.strings import (
    EPSILON,
    cpos,
    pos,
    resolve_position,
    substr,
    token_seq,
)
from repro.domains.tables import as_table, fill_down, transpose
from repro.domains.xmltree import XmlNode, parse_xml, serialize
from repro.lasy.parser import parse_lasy

ADD = Function("Add", (INT, INT), INT, lambda a, b: a + b)
MUL = Function("Mul", (INT, INT), INT, lambda a, b: a * b)
NEG = Function("Neg", (INT,), INT, lambda a: -a)


def _dsl():
    b = DslBuilder("prop", start="e")
    b.nt("e", INT).nt("b", BOOL)
    b.param("e")
    b.constant("e")
    b.rule("e", ADD, ["e", "e"])
    b.rule("e", MUL, ["e", "e"])
    b.rule("e", NEG, ["e"])
    b.fn("b", "Lt", ["e", "e"], lambda a, c: a < c)
    b.constants_from(lambda ex: {"e": [0, 1, 2]})
    b.rewrite(parse_rule("Add(a0, a1) ==> Add(a1, a0)", ["Add"]))
    b.rewrite(parse_rule("Mul(a0, a1) ==> Mul(a1, a0)", ["Mul"]))
    b.rewrite(parse_rule("Neg(Neg(a0)) ==> a0", ["Neg"]))
    return b.build()


DSL = _dsl()
REWRITER = Rewriter(DSL)


@st.composite
def int_exprs(draw, depth=3):
    """Random expressions over the arithmetic DSL."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return Param("x", INT, "e")
        return Const(draw(st.integers(-3, 3)), INT, "e")
    func = draw(st.sampled_from([ADD, MUL, NEG]))
    args = tuple(
        draw(int_exprs(depth=depth - 1)) for _ in range(func.arity)
    )
    return Call(func, args, "e")


class TestRewriteProperties:
    @given(int_exprs())
    @settings(max_examples=150, deadline=None)
    def test_canonicalization_idempotent(self, expr):
        once = REWRITER.canonicalize(expr)
        assert REWRITER.canonicalize(once) == once

    @given(int_exprs(), st.integers(-5, 5))
    @settings(max_examples=150, deadline=None)
    def test_canonicalization_preserves_semantics(self, expr, x):
        before = try_run(expr, ("x",), (x,))
        after = try_run(REWRITER.canonicalize(expr), ("x",), (x,))
        assert structurally_equal(before, after) or (
            before is ERROR and after is ERROR
        )

    @given(int_exprs())
    @settings(max_examples=100, deadline=None)
    def test_canonical_form_not_larger(self, expr):
        assert REWRITER.canonicalize(expr).size <= expr.size


class TestExprProperties:
    @given(int_exprs())
    @settings(max_examples=150, deadline=None)
    def test_equal_exprs_equal_hashes(self, expr):
        clone = replace_at(expr, (), expr)
        assert expr == clone
        assert hash(expr) == hash(clone)

    @given(int_exprs())
    @settings(max_examples=150, deadline=None)
    def test_walk_paths_consistent(self, expr):
        for path, node in expr.walk_with_paths():
            assert get_at(expr, path) == node

    @given(int_exprs(), st.integers(-3, 3))
    @settings(max_examples=100, deadline=None)
    def test_replace_roundtrip(self, expr, value):
        # Replacing any subexpression with itself is the identity.
        for path, node in expr.walk_with_paths():
            assert replace_at(expr, path, node) == expr

    @given(int_exprs())
    @settings(max_examples=100, deadline=None)
    def test_size_counts_nodes(self, expr):
        assert expr.size == len(list(expr.walk()))


class TestContextProperties:
    @given(int_exprs())
    @settings(max_examples=100, deadline=None)
    def test_contexts_have_one_hole_and_plug_restores(self, expr):
        for ctx in contexts_of(expr, DSL):
            holes = [n for n in ctx.root.walk() if isinstance(n, Hole)]
            assert len(holes) == 1
            if ctx.is_trivial:
                continue
            removed = get_at(
                expr if ctx.root.size == expr.size else ctx.plug(Hole("e")),
                ctx.path,
            ) if False else None
            # plugging the hole with what sits at the path in the holed
            # root's origin restores a structurally valid expression.
            del removed

    @given(int_exprs())
    @settings(max_examples=100, deadline=None)
    def test_whole_program_context_roundtrip(self, expr):
        for ctx in contexts_of(expr, DSL):
            if ctx.is_trivial:
                continue
            holed_from_program = replace_at(
                expr, ctx.path, Hole(get_at(expr, ctx.path).nt)
            ) if _path_valid(expr, ctx.path) else None
            if holed_from_program == ctx.root:
                assert ctx.plug(get_at(expr, ctx.path)) == expr

    @given(int_exprs())
    @settings(max_examples=100, deadline=None)
    def test_subexpressions_are_distinct(self, expr):
        subs = subexpressions_of(expr)
        assert len(subs) == len(set(subs))


def _path_valid(expr, path):
    try:
        get_at(expr, path)
        return True
    except (IndexError, ValueError):
        return False


class TestValueProperties:
    @given(st.recursive(
        st.integers() | st.text(max_size=5) | st.booleans(),
        lambda inner: st.lists(inner, max_size=4),
        max_leaves=12,
    ))
    @settings(max_examples=150, deadline=None)
    def test_freeze_idempotent_and_hashable(self, value):
        frozen = freeze(value)
        assert freeze(frozen) == frozen
        hash(frozen)

    @given(st.lists(st.integers() | st.text(max_size=4), max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_structural_equality_reflexive(self, values):
        assert structurally_equal(values, list(values))
        assert signature_key(values) == signature_key(tuple(values))


class TestStringDomainProperties:
    @given(st.text(alphabet="ab c,.", max_size=12), st.integers(-13, 13))
    @settings(max_examples=150, deadline=None)
    def test_cpos_resolves_in_bounds_or_errors(self, text, k):
        try:
            index = resolve_position(cpos(k), text)
        except Exception:
            return
        assert 0 <= index <= len(text)

    @given(
        st.text(alphabet="ab c", min_size=1, max_size=10),
        st.integers(0, 9),
        st.integers(0, 9),
    )
    @settings(max_examples=150, deadline=None)
    def test_substr_matches_python_slicing(self, text, i, j):
        i = min(i, len(text))
        j = min(j, len(text))
        if i > j:
            return
        assert substr(text, cpos(i), cpos(j)) == text[i:j]

    @given(st.text(alphabet="ab c", max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_pos_boundaries_are_space_adjacent(self, text):
        try:
            index = resolve_position(
                pos(token_seq("Space"), EPSILON, 1), text
            )
        except Exception:
            return
        assert text[index - 1] == " "


class TestTableProperties:
    tables = st.integers(1, 4).flatmap(
        lambda width: st.lists(
            st.lists(st.text(alphabet="ab", max_size=2), min_size=width, max_size=width),
            min_size=1,
            max_size=4,
        )
    )

    @given(tables)
    @settings(max_examples=100, deadline=None)
    def test_transpose_involution(self, rows):
        grid = as_table(tuple(tuple(r) for r in rows))
        assert transpose(transpose(grid)) == grid

    @given(tables)
    @settings(max_examples=100, deadline=None)
    def test_fill_down_no_new_blanks_below_values(self, rows):
        grid = as_table(tuple(tuple(r) for r in rows))
        filled = fill_down(grid, 0)
        seen_value = False
        for row in filled:
            if row[0] != "":
                seen_value = True
            elif seen_value:
                raise AssertionError("blank below a value survived")


def _xml_nodes():
    return st.recursive(
        st.builds(
            XmlNode,
            st.sampled_from(["a", "b", "p"]),
            st.lists(
                st.tuples(st.sampled_from(["k", "id"]), st.text(alphabet="xy", max_size=3)),
                max_size=2,
                unique_by=lambda kv: kv[0],
            ).map(tuple),
        ),
        lambda children: st.builds(
            XmlNode,
            st.sampled_from(["d", "g"]),
            st.just(()),
            st.lists(children | st.text(alphabet="mn", min_size=1, max_size=3), max_size=3).map(tuple),
        ),
        max_leaves=8,
    )


class TestXmlProperties:
    @given(_xml_nodes())
    @settings(max_examples=100, deadline=None)
    def test_serialize_parse_roundtrip(self, node):
        assert parse_xml(serialize(node)) == node


class TestLasyParserProperties:
    @given(st.text(alphabet="abc \n\"\\,;(){}", max_size=30))
    @settings(max_examples=150, deadline=None)
    def test_parser_never_crashes_unexpectedly(self, junk):
        try:
            parse_lasy("language strings;\n" + junk)
        except ValueError:
            pass  # LasyParseError and validation errors are fine

    @given(
        st.lists(
            st.tuples(st.text(alphabet="ab c", max_size=6), st.text(alphabet="xyz", max_size=6)),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_examples_roundtrip_through_source(self, pairs):
        def quote(s):
            return '"' + s.replace("\\", "\\\\").replace('"', '\\"') + '"'

        lines = [
            f"require F({quote(a)}) == {quote(b)};" for a, b in pairs
        ]
        source = (
            "language strings;\nfunction string F(string s);\n"
            + "\n".join(lines)
        )
        program = parse_lasy(source)
        assert [(e.args[0], e.output) for e in program.examples] == pairs
