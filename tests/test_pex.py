"""Tests for the simulated Pex oracle and the Pex4Fun game."""

from repro.core.budget import Budget
from repro.core.dsl import Example, Signature
from repro.core.types import INT, STRING
from repro.pex import PUZZLES, Oracle, Puzzle, play, play_with_manual_examples
from repro.pex.puzzles import puzzles_by_category


def _puzzle(name):
    return next(p for p in PUZZLES if p.name == name)


def small_budget():
    return Budget(max_seconds=8, max_expressions=80_000)


class TestPuzzleSuite:
    def test_size_and_categories(self):
        assert len(PUZZLES) >= 60
        categories = puzzles_by_category()
        # The paper's named failure categories are represented.
        assert "unsupported-loop" in categories
        assert "missing-component" in categories
        assert "too-large" in categories

    def test_references_work_on_seeds(self):
        for puzzle in PUZZLES:
            for seed in puzzle.seeds:
                puzzle.reference(*seed)  # must not raise

    def test_names_unique(self):
        names = [p.name for p in PUZZLES]
        assert len(names) == len(set(names))


class TestOracle:
    def test_empty_program_gets_first_seed(self):
        oracle = Oracle(_puzzle("square"))
        example = oracle.find_counterexample(None)
        assert example is not None
        assert example.output == example.args[0] ** 2

    def test_correct_candidate_has_no_counterexample(self):
        oracle = Oracle(_puzzle("square"))
        assert oracle.find_counterexample(lambda x: x * x) is None

    def test_wrong_candidate_refuted(self):
        oracle = Oracle(_puzzle("square"))
        example = oracle.find_counterexample(lambda x: x + x)
        assert example is not None
        assert example.args[0] * example.args[0] == example.output

    def test_crashing_candidate_refuted(self):
        oracle = Oracle(_puzzle("square"))

        def boom(x):
            raise RuntimeError

        assert oracle.find_counterexample(boom) is not None

    def test_deterministic_with_seed(self):
        a = Oracle(_puzzle("square"), seed=3).find_counterexample(None)
        b = Oracle(_puzzle("square"), seed=3).find_counterexample(None)
        assert a == b

    def test_reference_domain_errors_skipped(self):
        # first-char is undefined on ""; the oracle must not use it.
        oracle = Oracle(_puzzle("first-char"))
        example = oracle.find_counterexample(None)
        assert example.args[0] != ""


class TestGame:
    def test_square_solved_quickly(self):
        result = play(_puzzle("square"), budget_factory=small_budget)
        assert result.solved
        assert result.iterations <= 3
        assert result.program is not None

    def test_iteration_cap_respected(self):
        result = play(
            _puzzle("bitwise-or"),
            budget_factory=lambda: Budget(max_expressions=3_000),
            max_iterations=3,
        )
        assert not result.solved
        assert result.iterations <= 3

    def test_examples_are_counterexamples(self):
        result = play(_puzzle("double"), budget_factory=small_budget)
        puzzle = _puzzle("double")
        for example in result.examples:
            assert puzzle.reference(*example.args) == example.output

    def test_manual_sequence_fallback(self):
        manual = [
            Example((0,), 1),
            Example((1,), 1),
            Example((2,), 2),
            Example((3,), 6),
            Example((4,), 24),
        ]
        result = play_with_manual_examples(
            _puzzle("factorial"),
            manual,
            budget_factory=lambda: Budget(
                max_seconds=15, max_expressions=150_000
            ),
        )
        assert result.solved

    def test_solved_program_matches_reference_everywhere_tested(self):
        result = play(_puzzle("max-of-two"), budget_factory=small_budget)
        assert result.solved
        oracle = Oracle(_puzzle("max-of-two"), seed=99)
        fn = result.program
        from repro.core.evaluator import run_program

        assert (
            oracle.find_counterexample(
                lambda *args: run_program(fn, ("a", "b"), args)
            )
            is None
        )
