"""Edge-case tests for the LaSy runner and the benchmark plumbing."""

import pytest

from repro.core.budget import Budget
from repro.lasy.parser import parse_lasy
from repro.lasy.runner import run_lasy
from repro.suites.benchmark import Benchmark


def small_budget():
    return Budget(max_seconds=8, max_expressions=80_000)


class TestRunnerEdges:
    def test_interleaved_examples_across_functions(self):
        # Lookup and synthesized-function examples interleave; order of
        # arrival must not matter for the lookup table's completeness.
        source = """
            language pexfun;
            lookup int Code(string s);
            function int Inc(int x);
            require Code("a") == 1;
            require Inc(1) == 2;
            require Code("b") == 2;
            require Inc(5) == 6;
        """
        result = run_lasy(parse_lasy(source), budget_factory=small_budget)
        assert result.success
        assert result.functions["Code"]("b") == 2
        assert result.functions["Inc"](9) == 10

    def test_function_with_no_examples_is_absent(self):
        source = """
            language pexfun;
            function int Used(int x);
            function int Unused(int x);
            require Used(2) == 4;
            require Used(3) == 6;
        """
        result = run_lasy(parse_lasy(source), budget_factory=small_budget)
        assert "Used" in result.functions
        # Unused never saw an example: nothing to synthesize from.
        assert "Unused" not in result.functions

    def test_failure_propagates_to_success_flag(self):
        source = """
            language pexfun;
            function int Weird(int x);
            require Weird(1) == 10;
            require Weird(1) == 20;
        """
        result = run_lasy(
            parse_lasy(source),
            budget_factory=lambda: Budget(max_expressions=2_000),
        )
        assert not result.success

    def test_unknown_language_raises(self):
        source = """
            language klingon;
            function int F(int x);
            require F(1) == 1;
        """
        with pytest.raises(KeyError):
            run_lasy(parse_lasy(source))

    def test_steps_record_function_names(self):
        source = """
            language pexfun;
            function int Id(int x);
            require Id(4) == 4;
        """
        result = run_lasy(parse_lasy(source), budget_factory=small_budget)
        assert result.steps[0][0] == "Id"


class TestBenchmarkPlumbing:
    def make(self):
        return Benchmark(
            name="toy",
            domain="pexfun",
            source="""
                language pexfun;
                function int Twice(int x);
                require Twice(2) == 4;
                require Twice(5) == 10;
            """,
            holdout=[("Twice", (9,), 18)],
        )

    def test_n_examples(self):
        assert self.make().n_examples() == 2

    def test_run_and_holdout(self):
        benchmark = self.make()
        result = benchmark.run(budget_factory=small_budget)
        assert result.success
        assert benchmark.check_holdout(result)

    def test_wrong_holdout_detected(self):
        benchmark = self.make()
        benchmark.holdout = [("Twice", (9,), 99)]
        result = benchmark.run(budget_factory=small_budget)
        assert result.success
        assert not benchmark.check_holdout(result)

    def test_missing_function_holdout_fails(self):
        benchmark = self.make()
        benchmark.holdout = [("Nope", (1,), 1)]
        result = benchmark.run(budget_factory=small_budget)
        assert not benchmark.check_holdout(result)
