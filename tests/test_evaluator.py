"""Tests for the fuel-bounded evaluator (repro.core.evaluator)."""

import pytest

from repro.core.evaluator import (
    Env,
    EvaluationError,
    Fuel,
    check_value_size,
    evaluate,
    run_program,
    try_run,
)
from repro.core.expr import (
    Call,
    Const,
    Foreach,
    ForLoop,
    Function,
    Hole,
    If,
    Lambda,
    LasyCall,
    Param,
    Recurse,
    Var,
)
from repro.core.types import BOOL, INT, STRING, list_of
from repro.core.values import ERROR

ADD = Function("Add", (INT, INT), INT, lambda a, b: a + b)
SUB = Function("Sub", (INT, INT), INT, lambda a, b: a - b)
MUL = Function("Mul", (INT, INT), INT, lambda a, b: a * b)
LE = Function("Le", (INT, INT), BOOL, lambda a, b: a <= b)
BOOM = Function("Boom", (INT,), INT, lambda a: 1 // 0)


def x():
    return Param("x", INT, "e")


def const(v, ty=INT):
    return Const(v, ty, "e")


class TestBasics:
    def test_const(self):
        assert run_program(const(5), ("x",), (0,)) == 5

    def test_param(self):
        assert run_program(x(), ("x",), (42,)) == 42

    def test_call(self):
        expr = Call(ADD, (x(), const(1)), "e")
        assert run_program(expr, ("x",), (4,)) == 5

    def test_unbound_param_errors(self):
        with pytest.raises(EvaluationError):
            run_program(Param("y", INT, "e"), ("x",), (1,))

    def test_component_exception_wrapped(self):
        with pytest.raises(EvaluationError):
            run_program(Call(BOOM, (x(),), "e"), ("x",), (1,))

    def test_hole_is_not_evaluable(self):
        with pytest.raises(EvaluationError):
            run_program(Hole("e"), ("x",), (1,))

    def test_try_run_returns_error_value(self):
        assert try_run(Call(BOOM, (x(),), "e"), ("x",), (1,)) is ERROR


class TestConditionals:
    def test_first_true_branch_wins(self):
        cond = If(
            ((Call(LE, (x(), const(0)), "b"), const(-1)),),
            const(1),
            "e",
        )
        assert run_program(cond, ("x",), (-5,)) == -1
        assert run_program(cond, ("x",), (5,)) == 1

    def test_non_bool_guard_errors(self):
        cond = If(((x(), const(1)),), const(0), "e")
        with pytest.raises(EvaluationError):
            run_program(cond, ("x",), (1,))


class TestLambdas:
    def test_closure_call(self):
        w = Var("w", INT, "c")
        lam = Lambda((w,), Call(ADD, (w, const(1)), "e"), "λ")
        env = Env(params={})
        closure = evaluate(lam, env)
        assert closure(4) == 5

    def test_wrong_arity_errors(self):
        w = Var("w", INT, "c")
        lam = Lambda((w,), w, "λ")
        closure = evaluate(lam, Env(params={}))
        with pytest.raises(EvaluationError):
            closure(1, 2)

    def test_unbound_var_errors(self):
        with pytest.raises(EvaluationError):
            evaluate(Var("w", INT, "c"), Env(params={}))


class TestRecursion:
    def _fact(self):
        guard = Call(LE, (x(), const(1)), "b")
        rec = Recurse((Call(SUB, (x(), const(1)), "e"),), "e")
        body = Call(MUL, (x(), rec), "e")
        return If(((guard, const(1)),), body, "e")

    def test_factorial(self):
        assert run_program(self._fact(), ("x",), (5,)) == 120

    def test_unchanged_arguments_rejected(self):
        looping = Recurse((x(),), "e")
        with pytest.raises(EvaluationError):
            run_program(looping, ("x",), (3,))

    def test_depth_limit(self):
        # f(x) = f(x - 1): no base case, strictly decreasing arguments.
        looping = Recurse((Call(SUB, (x(), const(1)), "e"),), "e")
        with pytest.raises(EvaluationError):
            run_program(looping, ("x",), (10**6,), max_depth=10)

    def test_recursion_oracle_overrides(self):
        rec = Recurse((Call(SUB, (x(), const(1)), "e"),), "e")
        value = run_program(
            rec, ("x",), (5,), recursion_oracle=lambda args: args[0] * 100
        )
        assert value == 400

    def test_recursion_without_binding_errors(self):
        rec = Recurse((Call(SUB, (x(), const(1)), "e"),), "e")
        env = Env(params={"x": 1}, recursion_params=("x",))
        with pytest.raises(EvaluationError):
            evaluate(rec, env)


class TestLasyCalls:
    def test_known_function(self):
        expr = LasyCall("Twice", (x(),), "e")
        value = run_program(
            expr, ("x",), (4,), lasy_fns={"Twice": lambda v: 2 * v}
        )
        assert value == 8

    def test_unknown_function_errors(self):
        with pytest.raises(EvaluationError):
            run_program(LasyCall("Nope", (x(),), "e"), ("x",), (4,))


class TestLoops:
    def test_foreach_collects(self):
        xs = Param("xs", list_of(INT), "arr")
        current = Var("current", INT, "c")
        body = Lambda(
            (
                Var("i", INT, "c"),
                current,
                Var("acc", list_of(INT), "arr"),
            ),
            Call(MUL, (current, current), "e"),
            "λ",
        )
        loop = Foreach(xs, body, "P")
        assert run_program(loop, ("xs",), ((3, 5, 4),)) == (9, 25, 16)

    def test_foreach_reverse(self):
        xs = Param("xs", list_of(INT), "arr")
        current = Var("current", INT, "c")
        body = Lambda(
            (Var("i", INT, "c"), current, Var("acc", list_of(INT), "arr")),
            current,
            "λ",
        )
        loop = Foreach(xs, body, "P", reverse=True)
        assert run_program(loop, ("xs",), ((1, 2, 3),)) == (3, 2, 1)

    def test_foreach_on_non_sequence_errors(self):
        body = Lambda(
            (
                Var("i", INT, "c"),
                Var("current", INT, "c"),
                Var("acc", list_of(INT), "arr"),
            ),
            const(0),
            "λ",
        )
        loop = Foreach(x(), body, "P")
        with pytest.raises(EvaluationError):
            run_program(loop, ("x",), (3,))

    def test_forloop_accumulates(self):
        body = Lambda(
            (Var("i", INT, "c"), Var("acc", INT, "e")),
            Call(ADD, (Var("i", INT, "c"), Var("acc", INT, "e")), "e"),
            "λ",
        )
        loop = ForLoop(x(), const(0), body, "P", start=1)
        assert run_program(loop, ("x",), (4,)) == 10

    def test_forloop_zero_iterations(self):
        body = Lambda(
            (Var("i", INT, "c"), Var("acc", INT, "e")),
            const(99),
            "λ",
        )
        loop = ForLoop(x(), const(7), body, "P", start=1)
        assert run_program(loop, ("x",), (0,)) == 7

    def test_forloop_non_int_bound_errors(self):
        body = Lambda(
            (Var("i", INT, "c"), Var("acc", INT, "e")),
            const(0),
            "λ",
        )
        loop = ForLoop(Const("s", STRING, "e"), const(0), body, "P")
        with pytest.raises(EvaluationError):
            run_program(loop, (), ())


class TestBudgets:
    def test_fuel_exhaustion(self):
        deep = x()
        for _ in range(100):
            deep = Call(ADD, (deep, const(1)), "e")
        with pytest.raises(EvaluationError):
            run_program(deep, ("x",), (0,), fuel=10)

    def test_fuel_object(self):
        fuel = Fuel(2)
        fuel.spend()
        fuel.spend()
        with pytest.raises(EvaluationError):
            fuel.spend()

    def test_value_size_limit_int(self):
        with pytest.raises(EvaluationError):
            check_value_size(1 << 1000)

    def test_value_size_limit_passthrough(self):
        assert check_value_size(42) == 42
        assert check_value_size("abc") == "abc"

    def test_huge_int_from_component_rejected(self):
        # Repeated squaring overflows the value-size limit, not the clock.
        big = Const(1 << 500, INT, "e")
        expr = Call(MUL, (big, big), "e")
        assert try_run(expr, (), ()) is ERROR
