"""Shared pytest configuration."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: benchmark-scale synthesis runs (seconds to minutes each)",
    )
    config.addinivalue_line(
        "markers",
        "trace_smoke: end-to-end traced synthesis checks "
        "(run_final_benches.sh runs these as a separate job)",
    )


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run slow synthesis tests",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip = pytest.mark.skip(reason="slow; use --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
