"""Shared pytest configuration.

Besides the marker/option plumbing, this installs a **per-test
timeout** so one hung synthesis (or a robustness-test worker that was
never reaped) fails that test instead of wedging the whole suite —
the CI analog of the per-task timeouts ``repro.exec.parallel`` enforces
on its workers. When the ``pytest-timeout`` plugin is installed (CI
installs it; see requirements-dev.txt) it does the job natively;
otherwise a ``faulthandler.dump_traceback_later`` fallback aborts the
run with a traceback dump after the deadline. Override per test with
``@pytest.mark.timeout(seconds)``.
"""

import faulthandler

import pytest

# Generous defaults: tier-1 synthesis tests run in seconds; these only
# catch genuine hangs. Slow-marked tests get a much longer leash.
DEFAULT_TIMEOUT_S = 180.0
SLOW_TIMEOUT_S = 900.0

try:
    import pytest_timeout  # noqa: F401 - presence check only

    HAVE_PYTEST_TIMEOUT = True
except ImportError:
    HAVE_PYTEST_TIMEOUT = False


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: benchmark-scale synthesis runs (seconds to minutes each)",
    )
    config.addinivalue_line(
        "markers",
        "trace_smoke: end-to-end traced synthesis checks "
        "(run_final_benches.sh runs these as a separate job)",
    )
    if HAVE_PYTEST_TIMEOUT:
        # Default deadline; @pytest.mark.timeout overrides per test.
        # (Set here rather than in pyproject so a plugin-less local run
        # doesn't warn about unknown ini options.)
        if not getattr(config.option, "timeout", None):
            config.option.timeout = DEFAULT_TIMEOUT_S
    else:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test deadline (pytest-timeout "
            "compatible; enforced by a faulthandler fallback when the "
            "plugin is absent)",
        )


def _deadline_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    if "slow" in item.keywords:
        return SLOW_TIMEOUT_S
    return DEFAULT_TIMEOUT_S


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    if HAVE_PYTEST_TIMEOUT:
        # The plugin handles marker and default (set in addopts/ini).
        yield
        return
    # Fallback: arm a process-wide watchdog around each test. exit=True
    # turns a hang into a hard abort with tracebacks of every thread —
    # crude but unmissable, and it cannot deadlock like signal-based
    # interruption of C extensions can.
    faulthandler.dump_traceback_later(_deadline_for(item), exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run slow synthesis tests",
    )


def pytest_collection_modifyitems(config, items):
    if HAVE_PYTEST_TIMEOUT:
        for item in items:
            if (
                "slow" in item.keywords
                and item.get_closest_marker("timeout") is None
            ):
                item.add_marker(pytest.mark.timeout(SLOW_TIMEOUT_S))
    if config.getoption("--runslow"):
        return
    skip = pytest.mark.skip(reason="slow; use --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
