"""Tests for the two central algorithms (repro.core.dbs / repro.core.tds)."""

import pytest

from repro.core.budget import Budget
from repro.core.dbs import DbsOptions, dbs
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.evaluator import run_program
from repro.core.tds import TdsOptions, TdsSession, tds
from repro.core.types import BOOL, INT, STRING, CHAR, list_of


def small_budget():
    return Budget(max_seconds=10.0, max_expressions=40_000)


def walkthrough_dsl():
    """The paper's Example 1 DSL."""
    b = DslBuilder("walkthrough", start="C")
    b.nt("C", CHAR).nt("S", STRING).nt("N", INT)
    b.fn("C", "CharAt", ["S", "N"], lambda s, n: s[n])
    b.fn("C", "ToUpper", ["C"], lambda c: c.upper())
    b.fn("S", "Word", ["S", "N"], lambda s, n: s.split(" ")[n])
    b.param("S")
    b.constant("N")
    b.constants_from(lambda examples: {"N": [0, 1]})
    return b.build()


def arith_cond_dsl():
    b = DslBuilder("arith", start="P")
    b.nt("P", INT).nt("e", INT).nt("b", BOOL)
    b.conditional("P", guard_nt="b", branch_nt="e")
    b.fn("e", "Neg", ["e"], lambda v: -v)
    b.fn("e", "Add", ["e", "e"], lambda a, c: a + c)
    b.fn("b", "Lt", ["e", "e"], lambda a, c: a < c)
    b.param("e")
    b.constant("e")
    b.constants_from(lambda examples: {"e": [0, 1]})
    return b.build()


WALK_SIG = Signature("f", (("a", STRING),), CHAR)
WALK_EXAMPLES = [
    Example(("Sam Smith",), "S"),
    Example(("Amy Smith",), "S"),
    Example(("jane doe",), "D"),
]


class TestDbs:
    def test_single_example_smallest_program(self):
        dsl = walkthrough_dsl()
        result = dbs(
            contexts=[],
            examples=[WALK_EXAMPLES[0]],
            seeds=[],
            dsl=dsl,
            signature=WALK_SIG,
            budget=small_budget(),
        )
        # The smallest program for 'Sam Smith' -> 'S' is CharAt(a, 0).
        assert result.program is not None
        assert str(result.program) == "CharAt(a, 0)"

    def test_timeout_reported(self):
        dsl = walkthrough_dsl()
        impossible = [Example(("abc",), "Z")]
        result = dbs(
            contexts=[],
            examples=impossible,
            seeds=[],
            dsl=dsl,
            signature=WALK_SIG,
            budget=Budget(max_expressions=500),
        )
        assert result.timed_out

    def test_conditional_needs_branch_budget(self):
        dsl = arith_cond_dsl()
        sig = Signature("abs", (("x", INT),), INT)
        examples = [Example((3,), 3), Example((-4,), 4)]
        flat = dbs(
            contexts=[],
            examples=examples,
            seeds=[],
            dsl=dsl,
            signature=sig,
            max_branches=1,
            budget=Budget(max_expressions=4_000),
        )
        assert flat.timed_out
        branching = dbs(
            contexts=[],
            examples=examples,
            seeds=[],
            dsl=dsl,
            signature=sig,
            max_branches=2,
            budget=small_budget(),
        )
        assert branching.program is not None
        assert run_program(branching.program, ("x",), (-9,)) == 9

    def test_stats_populated(self):
        dsl = walkthrough_dsl()
        result = dbs(
            contexts=[],
            examples=[WALK_EXAMPLES[0]],
            seeds=[],
            dsl=dsl,
            signature=WALK_SIG,
            budget=small_budget(),
        )
        assert result.stats.programs_tested >= 1
        assert result.stats.elapsed >= 0


class TestTds:
    def test_walkthrough(self):
        result = tds(
            WALK_SIG,
            WALK_EXAMPLES,
            walkthrough_dsl(),
            budget_factory=small_budget,
        )
        assert result.success
        assert str(result.program) == "ToUpper(CharAt(Word(a, 1), 0))"

    def test_invariant_prefix_satisfied(self):
        session = TdsSession(
            WALK_SIG, walkthrough_dsl(), budget_factory=small_budget
        )
        for i, example in enumerate(WALK_EXAMPLES):
            session.add_example(example)
            fn = session.current_function()
            assert fn is not None
            for prior in WALK_EXAMPLES[: i + 1]:
                assert fn(*prior.args) == prior.output

    def test_failure_reported(self):
        # An unsatisfiable pair of examples (same input, two outputs).
        examples = [Example(("x y",), "X"), Example(("x y",), "Y")]
        result = tds(
            WALK_SIG,
            examples,
            walkthrough_dsl(),
            budget_factory=lambda: Budget(max_expressions=2_000),
        )
        assert not result.success

    def test_steps_recorded(self):
        result = tds(
            WALK_SIG,
            WALK_EXAMPLES,
            walkthrough_dsl(),
            budget_factory=small_budget,
        )
        assert [s.example_index for s in result.steps][:3] == [0, 1, 2]
        assert all(
            s.action in ("satisfied", "synthesized", "timeout")
            for s in result.steps
        )

    def test_already_satisfied_examples_skip_dbs(self):
        dsl = walkthrough_dsl()
        examples = [
            Example(("Sam Smith",), "S"),
            Example(("Sara Smith",), "S"),  # same program still works
        ]
        result = tds(WALK_SIG, examples, dsl, budget_factory=small_budget)
        assert result.steps[1].action == "satisfied"

    def test_branch_budget_grows_after_failures(self):
        dsl = arith_cond_dsl()
        sig = Signature("abs", (("x", INT),), INT)
        examples = [
            Example((3,), 3),
            Example((5,), 5),
            Example((-4,), 4),
            Example((-7,), 7),
        ]
        result = tds(sig, examples, dsl, budget_factory=small_budget)
        assert result.success
        fn = result.function()
        assert fn(-123) == 123

    def test_function_wrapper_requires_program(self):
        result = tds(
            WALK_SIG,
            [Example(("x y",), "Z")],
            walkthrough_dsl(),
            budget_factory=lambda: Budget(max_expressions=200),
        )
        if not result.success and result.program is None:
            with pytest.raises(ValueError):
                result.function()


class TestAblationsStillSound:
    """The §6.3 configurations must stay *sound* (only success changes)."""

    @pytest.mark.parametrize(
        "options",
        [
            TdsOptions(use_contexts=False),
            TdsOptions(use_subexpressions=False),
            TdsOptions(use_contexts=False, use_subexpressions=False),
            TdsOptions(dbs=DbsOptions(use_dsl=False)),
        ],
    )
    def test_ablated_results_verified(self, options):
        result = tds(
            WALK_SIG,
            WALK_EXAMPLES,
            walkthrough_dsl(),
            budget_factory=small_budget,
            options=options,
        )
        if result.success:
            fn = result.function()
            for example in WALK_EXAMPLES:
                assert fn(*example.args) == example.output
