"""Regenerate the golden files for the report-trace --json schemas.

Run after an *intentional* schema change, then review the diff:

    PYTHONPATH=src python tests/data/regen_golden.py
"""

import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_TESTS = os.path.dirname(_HERE)
sys.path.insert(0, os.path.join(os.path.dirname(_TESTS), "src"))
sys.path.insert(0, _TESTS)

from test_obs_hotspots import synthetic_trace, synthetic_trace_new  # noqa: E402

from repro.obs import (  # noqa: E402
    build_hotspots,
    build_report,
    diff_reports,
    flame_lines,
    hotspots_to_json,
)


def dump(name, payload):
    path = os.path.join(_HERE, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


def main():
    old = build_report(synthetic_trace())
    new = build_report(synthetic_trace_new())
    dump("golden_hotspots.json", hotspots_to_json(build_hotspots(old)))
    dump("golden_diff.json", diff_reports(old, new))
    dump("golden_flame.json", flame_lines(synthetic_trace()))


if __name__ == "__main__":
    main()
