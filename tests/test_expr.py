"""Tests for the expression IR (repro.core.expr)."""

import pytest

from repro.core.expr import (
    Call,
    Const,
    Foreach,
    ForLoop,
    Function,
    Hole,
    If,
    Lambda,
    LasyCall,
    Param,
    Recurse,
    Var,
    count_branches,
    free_vars,
    get_at,
    is_recursive,
    replace_at,
    top_level_bodies,
)
from repro.core.types import INT, STRING, list_of

ADD = Function("Add", (INT, INT), INT, lambda a, b: a + b)
NEG = Function("Neg", (INT,), INT, lambda a: -a)


def x():
    return Param("x", INT, "e")


def const(v):
    return Const(v, INT, "e")


class TestConstruction:
    def test_sizes(self):
        assert x().size == 1
        assert Call(ADD, (x(), const(1)), "e").size == 3

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Call(ADD, (x(),), "e")

    def test_if_requires_branch(self):
        with pytest.raises(ValueError):
            If((), const(1), "e")

    def test_str_rendering(self):
        expr = Call(ADD, (x(), const(1)), "e")
        assert str(expr) == "Add(x, 1)"


class TestEqualityAndHashing:
    def test_structural_equality(self):
        a = Call(ADD, (x(), const(1)), "e")
        b = Call(ADD, (x(), const(1)), "e")
        assert a == b
        assert hash(a) == hash(b)

    def test_nt_is_part_of_identity(self):
        assert Param("x", INT, "e") != Param("x", INT, "f")

    def test_different_args_unequal(self):
        assert Call(ADD, (x(), const(1)), "e") != Call(
            ADD, (x(), const(2)), "e"
        )

    def test_different_node_kinds_unequal(self):
        assert x() != const(1)

    def test_usable_in_sets(self):
        exprs = {Call(ADD, (x(), const(1)), "e") for _ in range(5)}
        assert len(exprs) == 1


class TestTraversal:
    def test_walk_counts_nodes(self):
        expr = Call(ADD, (Call(NEG, (x(),), "e"), const(1)), "e")
        assert len(list(expr.walk())) == 4

    def test_walk_with_paths_roundtrip(self):
        expr = Call(ADD, (Call(NEG, (x(),), "e"), const(1)), "e")
        for path, node in expr.walk_with_paths():
            assert get_at(expr, path) == node

    def test_replace_at_root(self):
        assert replace_at(x(), (), const(7)) == const(7)

    def test_replace_at_leaf(self):
        expr = Call(ADD, (x(), const(1)), "e")
        replaced = replace_at(expr, (1,), const(9))
        assert str(replaced) == "Add(x, 9)"

    def test_replace_preserves_original(self):
        expr = Call(ADD, (x(), const(1)), "e")
        replace_at(expr, (0,), const(5))
        assert str(expr) == "Add(x, 1)"

    def test_with_children_if_shape_checked(self):
        cond = If(((x(), const(1)),), const(0), "e")
        with pytest.raises(ValueError):
            cond.with_children((x(),))


class TestBranches:
    def test_count_branches_plain(self):
        assert count_branches(x()) == 1

    def test_count_branches_none(self):
        assert count_branches(None) == 1

    def test_count_branches_if(self):
        cond = If(((x(), const(1)), (x(), const(2))), const(0), "e")
        assert count_branches(cond) == 3

    def test_top_level_bodies(self):
        cond = If(((x(), const(1)),), const(0), "e")
        assert top_level_bodies(cond) == (const(1), const(0))
        assert top_level_bodies(x()) == (x(),)


class TestRecursionAndVars:
    def test_is_recursive(self):
        assert is_recursive(Recurse((x(),), "e"))
        assert not is_recursive(x())

    def test_free_vars_of_var(self):
        assert free_vars(Var("w", INT, "c")) == frozenset({"w"})

    def test_lambda_binds(self):
        w = Var("w", INT, "c")
        lam = Lambda((w,), Call(NEG, (w,), "e"), "λ")
        assert free_vars(lam) == frozenset()

    def test_lambda_leaves_outer_free(self):
        w = Var("w", INT, "c")
        u = Var("u", INT, "c")
        lam = Lambda((w,), Call(ADD, (w, u), "e"), "λ")
        assert free_vars(lam) == frozenset({"u"})


class TestLoopNodes:
    def test_foreach_children_roundtrip(self):
        src = Param("xs", list_of(INT), "arr")
        body = Lambda(
            (
                Var("i", INT, "c"),
                Var("current", INT, "c"),
                Var("acc", list_of(INT), "arr"),
            ),
            Var("current", INT, "c"),
            "λ",
        )
        loop = Foreach(src, body, "P")
        rebuilt = loop.with_children(loop.children())
        assert rebuilt == loop

    def test_foreach_rejects_non_lambda_body(self):
        src = Param("xs", list_of(INT), "arr")
        loop = Foreach(
            src,
            Lambda((Var("i", INT, "c"),), Var("i", INT, "c"), "λ"),
            "P",
        )
        with pytest.raises(ValueError):
            loop.with_children((src, src))

    def test_forloop_children(self):
        body = Lambda(
            (Var("i", INT, "c"), Var("acc", INT, "e")),
            Var("acc", INT, "e"),
            "λ",
        )
        loop = ForLoop(x(), const(0), body, "P", start=1)
        assert len(loop.children()) == 3
        assert loop.with_children(loop.children()) == loop


class TestOtherNodes:
    def test_lasycall(self):
        call = LasyCall("Helper", (x(),), "f")
        assert str(call) == "Helper(x)"
        assert call.with_children((const(3),)).args == (const(3),)

    def test_hole_str(self):
        assert str(Hole("e")) == "•"
