"""Tests for the shared experiment machinery (repro.experiments.common)."""

from repro.experiments.common import (
    ExperimentConfig,
    FAST,
    FULL,
    format_table,
    time_buckets,
)
from repro.suites.benchmark import Benchmark, BenchmarkOutcome


def outcome(name, success, elapsed):
    benchmark = Benchmark(name=name, source="", domain="pexfun")
    return BenchmarkOutcome(
        benchmark=benchmark,
        success=success,
        holdout_ok=success,
        elapsed=elapsed,
        dbs_times=[elapsed],
    )


class TestTimeBuckets:
    def test_paper_buckets(self):
        outcomes = [
            outcome("a", True, 0.5),
            outcome("b", True, 2.0),
            outcome("c", True, 7.0),
            outcome("d", True, 30.0),
            outcome("e", False, 60.0),
        ]
        rows = dict(time_buckets(outcomes))
        assert rows["0-1s"] == 1
        assert rows["1-5s"] == 1
        assert rows["5-25s"] == 1
        assert rows[">=25s"] == 1
        assert rows["unsolved"] == 1

    def test_unsolved_not_bucketed_by_time(self):
        rows = dict(time_buckets([outcome("a", False, 0.1)]))
        assert rows["0-1s"] == 0
        assert rows["unsolved"] == 1


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "n"], [["longer-name", 1], ["x", 234]])
        lines = text.splitlines()
        assert len(lines) == 4
        header, rule, row1, row2 = lines
        # The second column starts at a fixed offset on every line.
        offset = len("longer-name") + 2
        assert header[offset] == "n"
        assert rule[offset] == "-"
        assert row1[offset] == "1"
        assert row2[offset] == "2"

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestConfig:
    def test_budget_factory_fresh_budgets(self):
        config = ExperimentConfig(budget_seconds=1.0, budget_expressions=10)
        factory = config.budget_factory()
        assert factory() is not factory()

    def test_hard_multiplier(self):
        config = ExperimentConfig(
            budget_seconds=10.0, budget_expressions=100, hard_multiplier=3.0
        )
        assert config.budget_factory(hard=True)().max_seconds == 30.0
        assert config.budget_factory(hard=False)().max_seconds == 10.0

    def test_presets_ordered(self):
        assert FULL.budget_seconds > FAST.budget_seconds
        assert FULL.budget_expressions > FAST.budget_expressions
