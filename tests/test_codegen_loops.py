"""Codegen coverage for loop nodes, recursion, and the helper runtime."""

from repro.core.dsl import DslBuilder, Signature
from repro.core.evaluator import run_program
from repro.core.expr import (
    Call,
    Const,
    Foreach,
    ForLoop,
    Function,
    If,
    Lambda,
    LasyCall,
    Param,
    Recurse,
    Var,
)
from repro.core.types import BOOL, INT, STRING, list_of
from repro.lasy.codegen import compile_python, to_csharp, to_python

ADD = Function("Add", (INT, INT), INT, lambda a, b: a + b)
MUL = Function("Mul", (INT, INT), INT, lambda a, b: a * b)
SUB = Function("Sub", (INT, INT), INT, lambda a, b: a - b)
LE = Function("Le", (INT, INT), BOOL, lambda a, b: a <= b)


def dsl():
    b = DslBuilder("t", start="e")
    b.nt("e", INT).nt("b", BOOL)
    b.param("e")
    b.rule("e", ADD, ["e", "e"])
    b.rule("e", MUL, ["e", "e"])
    b.rule("e", SUB, ["e", "e"])
    b.rule("b", LE, ["e", "e"])
    return b.build()


def _foreach_squares():
    current = Var("current", INT, "c")
    body = Lambda(
        (Var("i", INT, "c"), current, Var("acc", list_of(INT), "a")),
        Call(MUL, (current, current), "e"),
        "λ",
    )
    return Foreach(Param("xs", list_of(INT), "arr"), body, "P")


def _for_triangle():
    i = Var("i", INT, "c")
    acc = Var("acc", INT, "e")
    body = Lambda((i, acc), Call(ADD, (i, acc), "e"), "λ")
    return ForLoop(Param("n", INT, "e"), Const(0, INT, "e"), body, "P")


class TestPythonLoops:
    def test_foreach_statement_form(self):
        sig = Signature("sq", (("xs", list_of(INT)),), list_of(INT))
        code = to_python(sig, _foreach_squares())
        assert "for i, current in enumerate(xs):" in code
        namespace = {"Mul": lambda a, b: a * b}
        exec(code, namespace)
        assert namespace["sq"]([2, 3]) == (4, 9)

    def test_foreach_reverse_statement_form(self):
        program = _foreach_squares()
        reversed_loop = Foreach(
            program.source, program.body, program.nt, reverse=True
        )
        sig = Signature("sq", (("xs", list_of(INT)),), list_of(INT))
        code = to_python(sig, reversed_loop)
        assert "reversed(" in code

    def test_forloop_statement_form(self):
        sig = Signature("tri", (("n", INT),), INT)
        code = to_python(sig, _for_triangle())
        assert "for i in range(1, n + 1):" in code
        namespace = {"Add": lambda a, b: a + b}
        exec(code, namespace)
        assert namespace["tri"](4) == 10

    def test_nested_loop_expression_form_uses_helper(self):
        # A loop nested under a call renders via the runtime helper.
        wrap = Call(ADD, (Const(0, INT, "e"), _for_triangle()), "e")
        sig = Signature("f", (("n", INT),), INT)
        code = to_python(sig, wrap)
        assert "for_loop(" in code
        compiled = compile_python(sig, wrap, dsl())
        assert compiled(3) == 6

    def test_recursion_emits_self_call(self):
        guard = Call(LE, (Param("n", INT, "e"), Const(1, INT, "e")), "b")
        body = Call(
            MUL,
            (
                Param("n", INT, "e"),
                Recurse((Call(SUB, (Param("n", INT, "e"), Const(1, INT, "e")), "e"),), "e"),
            ),
            "e",
        )
        program = If(((guard, Const(1, INT, "e")),), body, "P")
        sig = Signature("fact", (("n", INT),), INT)
        code = to_python(sig, program)
        assert "fact(Sub(n, 1))" in code
        compiled = compile_python(sig, program, dsl())
        assert compiled(5) == 120
        assert compiled(5) == run_program(program, ("n",), (5,))

    def test_lasycall_by_name(self):
        sig = Signature("f", (("x", INT),), INT)
        body = LasyCall("Helper", (Param("x", INT, "e"),), "e")
        code = to_python(sig, body)
        assert "Helper(x)" in code


class TestCSharpLoops:
    def test_forloop_statement(self):
        sig = Signature("tri", (("n", INT),), INT)
        code = to_csharp(sig, _for_triangle())
        assert "for (int i = 1; i <= n; i++)" in code
        assert "int tri(int n)" in code

    def test_array_types(self):
        sig = Signature("f", (("xs", list_of(STRING)),), list_of(INT))
        body = Const((1, 2), list_of(INT), "e")
        code = to_csharp(sig, body)
        assert "int[] f(string[] xs)" in code
        assert "new[] {1, 2}" in code

    def test_foreach_expression_helper(self):
        sig = Signature("sq", (("xs", list_of(INT)),), list_of(INT))
        code = to_csharp(sig, _foreach_squares())
        assert "Foreach(xs, (i, current, acc) =>" in code
