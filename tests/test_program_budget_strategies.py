"""Tests for program wrappers, budgets, and composition strategies."""

import time

import pytest

from repro.core.budget import Budget, BudgetExhausted, default_budget
from repro.core.components import ComponentPool
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.evaluator import EvaluationError
from repro.core.expr import Call, Const, Function, Param
from repro.core.program import LookupFunction, SynthesizedFunction
from repro.core.strategies import make_concat_strategy
from repro.core.types import INT, STRING

ADD = Function("Add", (INT, INT), INT, lambda a, b: a + b)


class TestSynthesizedFunction:
    def fn(self):
        sig = Signature("inc", (("x", INT),), INT)
        body = Call(ADD, (Param("x", INT, "e"), Const(1, INT, "e")), "e")
        return SynthesizedFunction(sig, body)

    def test_callable(self):
        assert self.fn()(41) == 42

    def test_arity_checked(self):
        with pytest.raises(TypeError):
            self.fn()(1, 2)

    def test_satisfies(self):
        assert self.fn().satisfies(Example((1,), 2))
        assert not self.fn().satisfies(Example((1,), 3))

    def test_satisfies_all(self):
        assert self.fn().satisfies_all(
            [Example((0,), 1), Example((9,), 10)]
        )


class TestLookupFunction:
    def lookup(self):
        sig = Signature("venue", (("abbr", STRING),), STRING)
        fn = LookupFunction(sig)
        fn.add(Example(("PLDI",), "full name"))
        return fn

    def test_hit(self):
        assert self.lookup()("PLDI") == "full name"

    def test_miss_errors(self):
        with pytest.raises(EvaluationError):
            self.lookup()("POPL")

    def test_satisfies(self):
        fn = self.lookup()
        assert fn.satisfies(Example(("PLDI",), "full name"))
        assert not fn.satisfies(Example(("PLDI",), "other"))
        assert not fn.satisfies(Example(("POPL",), "x"))

    def test_body_is_none(self):
        assert self.lookup().body is None


class TestBudget:
    def test_expression_limit(self):
        budget = Budget(max_expressions=2)
        budget.charge_expression()
        budget.charge_expression()
        with pytest.raises(BudgetExhausted):
            budget.charge_expression()

    def test_program_limit(self):
        budget = Budget(max_programs=1)
        budget.charge_program()
        with pytest.raises(BudgetExhausted):
            budget.charge_program()

    def test_time_limit(self):
        budget = Budget(max_seconds=0.0)
        time.sleep(0.01)
        assert budget.exhausted()

    def test_unlimited_by_default_fields(self):
        budget = Budget()
        for _ in range(1000):
            budget.charge_expression()

    def test_restart_clock(self):
        budget = Budget(max_seconds=30)
        budget.restart_clock()
        assert not budget.exhausted()

    def test_spawn_scales_down(self):
        budget = Budget(max_seconds=10, max_expressions=1000, max_programs=1000)
        child = budget.spawn(0.5)
        assert child.max_expressions == 500
        assert child.max_programs == 500
        assert child.max_seconds <= 5.0

    def test_spawn_of_unbounded_stays_unbounded(self):
        child = Budget().spawn()
        assert child.max_expressions is None
        assert child.max_seconds is None

    def test_default_budget_is_bounded(self):
        budget = default_budget()
        assert budget.max_seconds is not None


class TestConcatStrategy:
    def dsl(self):
        b = DslBuilder("cat", start="e")
        b.nt("e", STRING)
        b.nt("f", STRING)
        b.param("f")
        b.constant("f")
        b.fn("e", "Concatenate", ["f", "e"], lambda a, c: a + c)
        b.unit("e", "f")
        b.constants_from(lambda ex: {"f": ["-", "!"]})
        return b.build()

    def test_covers_output_from_pieces(self):
        dsl = self.dsl()
        sig = Signature("f", (("a", STRING), ("b", STRING)), STRING)
        examples = [
            Example(("x", "y"), "x-y"),
            Example(("p", "q"), "p-q"),
        ]
        pool = ComponentPool(dsl, sig, examples)
        strategy = make_concat_strategy("Concatenate", "f", "e")
        candidates = strategy(pool, examples, sig, dsl)
        assert candidates
        from repro.core.evaluator import run_program

        hits = [
            c
            for c in candidates
            if run_program(c, ("a", "b"), ("m", "n")) == "m-n"
        ]
        assert hits

    def test_no_string_outputs_no_candidates(self):
        dsl = self.dsl()
        sig = Signature("f", (("a", STRING),), INT)
        examples = [Example(("x",), 3)]
        pool = ComponentPool(dsl, sig, examples)
        strategy = make_concat_strategy("Concatenate", "f", "e")
        assert strategy(pool, examples, sig, dsl) == []

    def test_uncoverable_output_no_candidates(self):
        dsl = self.dsl()
        sig = Signature("f", (("a", STRING),), STRING)
        examples = [Example(("x",), "zzz")]
        pool = ComponentPool(dsl, sig, examples)
        strategy = make_concat_strategy("Concatenate", "f", "e")
        candidates = strategy(pool, examples, sig, dsl)
        from repro.core.evaluator import try_run

        for candidate in candidates:
            assert try_run(candidate, ("a",), ("x",)) == "zzz"
