"""Tests for the paper's §7/§8 extensions: angelic pruning, incremental
re-synthesis, Pex4Fun feedback, executable codegen, and the CLI."""

import pytest

from repro.cli import main as cli_main
from repro.core.angelic import angelic_prune, probe_values
from repro.core.budget import Budget
from repro.core.contexts import contexts_of
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.expr import Call, Const, Function, Param
from repro.core.incremental import repair, resynthesize
from repro.core.tds import TdsOptions, tds
from repro.core.types import BOOL, INT, STRING
from repro.lasy.codegen import compile_python, runtime_namespace, to_python
from repro.pex import PUZZLES, generate_feedback

ADD = Function("Add", (INT, INT), INT, lambda a, b: a + b)
MUL = Function("Mul", (INT, INT), INT, lambda a, b: a * b)
FST = Function("Fst", (INT, INT), INT, lambda a, b: a)


def arith_dsl():
    b = DslBuilder("arith", start="e")
    b.nt("e", INT)
    b.param("e")
    b.constant("e")
    b.rule("e", ADD, ["e", "e"])
    b.rule("e", MUL, ["e", "e"])
    b.rule("e", FST, ["e", "e"])
    b.constants_from(lambda ex: {"e": [0, 1, 2]})
    return b.build()


SIG = Signature("f", (("x", INT),), INT)


def small_budget():
    return Budget(max_seconds=10, max_expressions=60_000)


class TestAngelicPruning:
    def test_probe_values_cover_examples(self):
        values = probe_values([Example((42,), 7)], INT)
        assert 42 in values and 7 in values

    def test_ignored_hole_pruned(self):
        # Fst(x, •): the hole never influences the output, so the context
        # cannot repair any failing example.
        program = Call(FST, (Param("x", INT, "e"), Const(0, INT, "e")), "e")
        contexts = contexts_of(program, arith_dsl())
        failing = [Example((3,), 99)]
        kept = angelic_prune(contexts, SIG, failing, failing)
        pruned = [c for c in contexts if c not in kept]
        assert any(c.path == (1,) for c in pruned)

    def test_influential_hole_kept(self):
        # Add(x, •): the right value (96) fixes the failing example.
        program = Call(ADD, (Param("x", INT, "e"), Const(0, INT, "e")), "e")
        contexts = contexts_of(program, arith_dsl())
        failing = [Example((3,), 99)]
        kept = angelic_prune(contexts, SIG, failing, failing)
        assert any(c.path == (1,) for c in kept)

    def test_trivial_context_never_pruned(self):
        program = Const(0, INT, "e")
        contexts = contexts_of(program, arith_dsl())
        kept = angelic_prune(contexts, SIG, [Example((1,), 5)], [])
        assert any(c.is_trivial for c in kept)

    def test_tds_option_preserves_results(self):
        examples = [Example((2,), 4), Example((5,), 10)]
        plain = tds(SIG, examples, arith_dsl(), budget_factory=small_budget)
        angelic = tds(
            SIG,
            examples,
            arith_dsl(),
            budget_factory=small_budget,
            options=TdsOptions(angelic_pruning=True),
        )
        assert plain.success and angelic.success


class TestIncremental:
    def test_unchanged_spec_is_free(self):
        examples = [Example((2,), 4), Example((5,), 10)]
        first = tds(SIG, examples, arith_dsl(), budget_factory=small_budget)
        assert first.success
        again = resynthesize(
            SIG,
            first.program,
            examples,
            arith_dsl(),
            budget_factory=small_budget,
        )
        assert again.success
        assert all(s.action == "satisfied" for s in again.steps)
        assert again.program == first.program

    def test_spec_change_repairs_locally(self):
        # Old spec: f(x) = 2x. New spec: f(x) = 2x + 1.
        examples = [Example((2,), 4), Example((5,), 10)]
        first = tds(SIG, examples, arith_dsl(), budget_factory=small_budget)
        new_examples = [Example((2,), 5), Example((5,), 11)]
        updated = resynthesize(
            SIG,
            first.program,
            new_examples,
            arith_dsl(),
            budget_factory=small_budget,
        )
        assert updated.success
        assert updated.function()(10) == 21

    def test_repair_of_approximate_program(self):
        # Another synthesizer produced x + x + 2 but the spec is x + x.
        approx = Call(
            ADD,
            (
                Call(ADD, (Param("x", INT, "e"), Param("x", INT, "e")), "e"),
                Const(2, INT, "e"),
            ),
            "e",
        )
        examples = [Example((1,), 2), Example((4,), 8)]
        fixed = repair(
            SIG, approx, examples, arith_dsl(), budget_factory=small_budget
        )
        assert fixed.success
        assert fixed.function()(9) == 18

    def test_from_empty_program_equals_plain_tds(self):
        examples = [Example((2,), 4)]
        result = resynthesize(
            SIG, None, examples, arith_dsl(), budget_factory=small_budget
        )
        assert result.success


class TestFeedback:
    def _puzzle(self, name):
        return next(p for p in PUZZLES if p.name == name)

    def test_correct_submission(self):
        puzzle = self._puzzle("square")
        program = Call(
            MUL, (Param("x", INT, "int"), Param("x", INT, "int")), "int"
        )
        feedback = generate_feedback(puzzle, program)
        assert feedback.correct
        assert "correct" in feedback.render()

    def test_wrong_submission_gets_counterexample_and_repair(self):
        puzzle = self._puzzle("square")
        # The player confused square with double.
        program = Call(
            ADD, (Param("x", INT, "int"), Param("x", INT, "int")), "int"
        )
        feedback = generate_feedback(
            puzzle,
            program,
            budget_factory=lambda: Budget(
                max_seconds=10, max_expressions=100_000
            ),
        )
        assert not feedback.correct
        assert feedback.counterexamples
        example = feedback.counterexamples[0]
        assert example.output == example.args[0] ** 2
        if feedback.suggestion is not None:
            assert "def P" in feedback.suggestion

    def test_empty_submission(self):
        puzzle = self._puzzle("identity-int")
        feedback = generate_feedback(puzzle, None)
        assert not feedback.correct or feedback.correct is True


class TestExecutableCodegen:
    def test_runtime_namespace_has_components_and_helpers(self):
        namespace = runtime_namespace(arith_dsl())
        assert namespace["Add"](1, 2) == 3
        assert namespace["for_loop"](3, 0, lambda i, acc: acc + i) == 6
        assert namespace["foreach"]((5,), lambda i, c, acc: c * 2) == (10,)

    def test_compiled_matches_interpreter(self):
        from repro.core.evaluator import run_program

        body = Call(
            MUL,
            (Call(ADD, (Param("x", INT, "e"), Const(1, INT, "e")), "e"),
             Param("x", INT, "e")),
            "e",
        )
        compiled = compile_python(SIG, body, arith_dsl())
        for x in (-3, 0, 7):
            assert compiled(x) == run_program(body, ("x",), (x,))

    def test_compiled_strings_positions_run(self):
        from repro.domains.registry import get_domain
        from repro.lasy import synthesize

        result = synthesize(
            """
            language strings;
            function string Domain(string email);
            require Domain("alice@example.com") == "example.com";
            require Domain("bob@research.org") == "research.org";
            """,
            budget_factory=small_budget,
        )
        assert result.success
        fn = result.functions["Domain"]
        compiled = compile_python(
            fn.signature, fn.body, get_domain("strings").dsl()
        )
        assert compiled("carol@city.edu") == "city.edu"


class TestCli:
    def test_domains_command(self, capsys):
        assert cli_main(["domains"]) == 0
        out = capsys.readouterr().out
        assert "strings" in out and "pexfun" in out

    def test_puzzles_command(self, capsys):
        assert cli_main(["puzzles"]) == 0
        assert "factorial" in capsys.readouterr().out

    def test_synthesize_command(self, tmp_path, capsys):
        source = tmp_path / "demo.lasy"
        source.write_text(
            "language pexfun;\n"
            "function int Double(int x);\n"
            "require Double(2) == 4;\n"
            "require Double(5) == 10;\n"
        )
        assert cli_main(["--timeout", "10", "synthesize", str(source)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "Double" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert cli_main(["experiment", "nope"]) == 2
