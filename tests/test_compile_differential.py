"""Differential property test: compiled closures vs the interpreter.

The compiled engine (``repro.core.compile``) must be observationally
identical to the reference tree-walking interpreter
(``repro.core.evaluator.evaluate``): same values, same ``ERROR``
outcomes (exact exception messages), and same fuel trajectory —
including *where* fuel exhaustion trips when the budget is tight.

This file checks that on ``N_EXPRS`` seeded-random well-typed
expressions per domain, generated top-down from each domain's DSL
productions and evaluated on real benchmark/puzzle inputs. Each
expression is run twice: once with ample fuel (value/error parity) and
once with a tight random budget (fuel-exhaustion parity).
"""

import random

import pytest

from repro.core.compile import clear_cache, compile_expr
from repro.core.dsl import Example, LambdaSpec, NtRef, Production, Signature
from repro.core.evaluator import Env, EvaluationError, Fuel, evaluate
from repro.core.expr import (
    Call,
    Const,
    Expr,
    Foreach,
    ForLoop,
    If,
    Lambda,
    Param,
    Var,
)
from repro.core.components import lambda_nt
from repro.core.types import BOOL, INT, STRING, Type, types_compatible
from repro.core.values import freeze
from repro.domains.registry import get_domain
from repro.lasy.parser import parse_lasy
from repro.lasy.runner import _coerce_example
from repro.pex.puzzles import PUZZLES
from repro.suites.strings_suite import STRING_BENCHMARKS
from repro.suites.tables_suite import TABLE_BENCHMARKS
from repro.suites.xml_suite import XML_BENCHMARKS

N_EXPRS = 1000
MAX_DEPTH = 5

DOMAINS = ["strings", "tables", "xml", "pexfun"]

_SUITES = {
    "strings": STRING_BENCHMARKS,
    "tables": TABLE_BENCHMARKS,
    "xml": XML_BENCHMARKS,
}


class _GenFail(Exception):
    """This production can't be instantiated here; try another."""


class ExprGen:
    """Seeded top-down generator of well-typed DSL expressions.

    Mirrors how the component pool instantiates productions (params by
    type compatibility, constants from the DSL's constant provider,
    lambda arguments as ``Lambda`` over typed ``Var``s) and additionally
    wraps results in the ``If``/``Foreach``/``ForLoop`` nodes the
    conditional and loop strategies produce, so every node kind the
    synthesizer can emit is exercised.
    """

    def __init__(self, dsl, signature: Signature, constants, rng):
        self.dsl = dsl
        self.signature = signature
        self.constants = constants
        self.rng = rng
        self.bool_nts = [
            nt for nt, ty in dsl.nonterminals.items() if ty == BOOL
        ]
        self.seq_nts = [
            nt
            for nt, ty in dsl.nonterminals.items()
            if ty == STRING or str(ty).startswith("list")
        ]

    # -- node construction --------------------------------------------

    def gen(self, nt: str, depth: int, bound):
        prods = [
            p
            for p in self.dsl.productions_for(nt)
            if p.kind not in ("lasy_fn", "recurse")
        ]
        self.rng.shuffle(prods)
        # Occasionally reference an enclosing lambda variable directly:
        # exercises Var nodes inside loop/lambda bodies.
        if bound and self.rng.random() < 0.3:
            nt_type = self.dsl.type_of(nt)
            matches = [
                (n, t) for n, t in bound.items() if types_compatible(nt_type, t)
            ]
            if matches:
                name, ty = self.rng.choice(matches)
                return Var(name, ty, nt)
        leaf_first = depth <= 0
        for preferred in (True, False) if leaf_first else (False, True):
            for prod in prods:
                is_leaf = prod.kind in ("param", "constant", "var") or (
                    prod.kind == "call" and not prod.args
                )
                if is_leaf != preferred:
                    continue
                try:
                    return self._instantiate(prod, nt, depth, bound)
                except _GenFail:
                    continue
        raise _GenFail(nt)

    def _instantiate(self, prod: Production, nt: str, depth: int, bound):
        if prod.kind == "param":
            nt_type = self.dsl.type_of(nt)
            options = [
                (name, ty)
                for name, ty in self.signature.params
                if types_compatible(nt_type, ty)
            ]
            if not options:
                raise _GenFail(nt)
            name, ty = self.rng.choice(options)
            return Param(name, ty, nt)
        if prod.kind == "constant":
            values = list(self.constants.get(nt, ()))
            if not values:
                raise _GenFail(nt)
            return Const(self.rng.choice(values), self.dsl.type_of(nt), nt)
        if prod.kind == "var":
            name = prod.var_name or ""
            vty = self.dsl.lambda_vars.get(name)
            if vty is None or name not in bound:
                raise _GenFail(nt)
            return Var(name, vty, nt)
        if prod.kind == "unit":
            target = prod.args[0]
            inner_nt = target.nt if isinstance(target, NtRef) else target
            return self.gen(inner_nt, depth, bound)
        if prod.kind == "call":
            assert prod.func is not None
            args = tuple(
                self._gen_arg(arg, depth - 1, bound) for arg in prod.args
            )
            return Call(prod.func, args, nt)
        raise _GenFail(nt)

    def _gen_arg(self, arg, depth: int, bound):
        if isinstance(arg, NtRef):
            inner = self.rng.choice(self.dsl.expansion(arg.nt))
            return self.gen(inner, depth, bound)
        if isinstance(arg, LambdaSpec):
            params = tuple(
                Var(n, t, f"τ:{t}")
                for n, t in zip(arg.var_names, arg.var_types)
            )
            inner_bound = dict(bound)
            inner_bound.update(zip(arg.var_names, arg.var_types))
            body = self.gen(arg.body_nt, depth, inner_bound)
            return Lambda(params, body, lambda_nt(arg))
        raise _GenFail(str(arg))

    # -- strategy-node wrappers ---------------------------------------

    def maybe_wrap(self, expr: Expr, nt: str, bound):
        """With some probability, wrap in the node kinds that come from
        the conditional (§5.2) and loop (§5.3) strategies rather than
        grammar productions."""
        roll = self.rng.random()
        if roll < 0.10 and self.bool_nts:
            guard = self.gen(self.rng.choice(self.bool_nts), 2, bound)
            orelse = self.gen(nt, 2, bound)
            return If(((guard, expr),), orelse, nt)
        if roll < 0.16 and self.seq_nts:
            src_nt = self.rng.choice(self.seq_nts)
            source = self.gen(src_nt, 2, bound)
            elem = STRING  # str sources iterate as 1-char strings
            body_bound = dict(bound)
            body_bound.update({"i": INT, "current": elem})
            body = self.gen(nt, 2, body_bound)
            lam = Lambda(
                (
                    Var("i", INT, "τ:int"),
                    Var("current", elem, f"τ:{elem}"),
                    Var("acc", STRING, "τ:list"),
                ),
                body,
                nt,
            )
            return Foreach(
                source, lam, nt, reverse=self.rng.random() < 0.5
            )
        if roll < 0.22:
            int_nts = [
                n for n, t in self.dsl.nonterminals.items() if t == INT
            ]
            if int_nts:
                bound_nt = self.rng.choice(int_nts)
                bound_expr = self.gen(bound_nt, 2, bound)
                init = self.gen(nt, 2, bound)
                acc_ty = self.dsl.type_of(nt)
                body_bound = dict(bound)
                body_bound.update({"i": INT, "acc": acc_ty})
                body = self.gen(nt, 2, body_bound)
                lam = Lambda(
                    (
                        Var("i", INT, "τ:int"),
                        Var("acc", acc_ty, f"τ:{acc_ty}"),
                    ),
                    body,
                    nt,
                )
                return ForLoop(bound_expr, init, lam, nt)
        if roll > 0.97:
            # An unbound lambda variable: both engines must raise the
            # same "unbound variable" error.
            return Var("__unbound__", self.dsl.type_of(nt), nt)
        return expr


# ---------------------------------------------------------------------
# Per-domain generation cases: (dsl, signature, input tuples, constants).


def _domain_cases(name):
    domain = get_domain(name)
    dsl = domain.dsl()
    cases = []
    if name == "pexfun":
        for puzzle in PUZZLES:
            if not puzzle.seeds:
                continue
            examples = [
                Example(seed, puzzle.reference(*seed))
                for seed in puzzle.seeds
            ]
            constants = dict(dsl.constants_for(examples))
            cases.append(
                (dsl, puzzle.signature, [e.args for e in examples], constants)
            )
            if len(cases) >= 12:
                break
        return cases
    for bench in _SUITES[name][:8]:
        prog = parse_lasy(bench.source)
        for decl in prog.declarations:
            if decl.is_lookup:
                continue
            stmts = prog.examples_for(decl.name)
            if not stmts:
                continue
            examples = [
                _coerce_example(domain, decl.signature, s) for s in stmts
            ]
            constants = dict(dsl.constants_for(examples))
            cases.append(
                (
                    dsl,
                    decl.signature,
                    [e.args for e in examples],
                    constants,
                )
            )
    return cases


# ---------------------------------------------------------------------
# The differential harness.


def _run_one(runner, signature: Signature, args, fuel: int):
    env = Env(
        params=dict(zip(signature.param_names, args)),
        fuel=Fuel(fuel),
    )
    try:
        value = freeze(runner(env))
        return ("value", value, env.fuel.remaining)
    except EvaluationError as exc:
        return ("error", str(exc), env.fuel.remaining)


def _assert_agree(expr: Expr, signature: Signature, args, fuel: int):
    interp = _run_one(lambda env: evaluate(expr, env), signature, args, fuel)
    compiled = _run_one(compile_expr(expr), signature, args, fuel)
    assert interp == compiled, (
        f"engines diverge on {expr!s} args={args!r} fuel={fuel}:\n"
        f"  interp:   {interp!r}\n"
        f"  compiled: {compiled!r}"
    )


@pytest.mark.parametrize("domain_name", DOMAINS)
def test_compiled_matches_interpreter(domain_name):
    rng = random.Random(f"tds-differential-{domain_name}")
    cases = _domain_cases(domain_name)
    assert cases, f"no generation cases for domain {domain_name}"
    clear_cache()
    generated = 0
    failures = 0
    while generated < N_EXPRS:
        dsl, signature, inputs, constants = cases[generated % len(cases)]
        gen = ExprGen(dsl, signature, constants, rng)
        nt = rng.choice(
            [n for n in dsl.nonterminals if dsl.productions_for(n)]
        )
        try:
            expr = gen.gen(nt, rng.randint(1, MAX_DEPTH), {})
            expr = gen.maybe_wrap(expr, nt, {})
        except _GenFail:
            failures += 1
            assert failures < 10 * N_EXPRS, "generator starved"
            continue
        generated += 1
        args = inputs[generated % len(inputs)]
        # Ample fuel: value / ERROR parity.
        _assert_agree(expr, signature, args, fuel=100_000)
        # Tight fuel: exhaustion must trip at the same node with the
        # same remaining balance.
        _assert_agree(
            expr, signature, args, fuel=rng.randint(1, max(2, expr.size))
        )
    assert generated >= N_EXPRS


def test_fuel_exhaustion_message_and_balance_parity():
    dsl = get_domain("pexfun").dsl()
    sig = Signature("P", (("x", INT),), INT)
    fns = {f.name: f for f in dsl.functions()}
    add = next(f for name, f in fns.items() if name in ("Add", "Plus"))
    expr = Call(
        add,
        (Call(add, (Param("x", INT, "e"), Const(1, INT, "e")), "e"),
         Const(2, INT, "e")),
        "e",
    )
    for fuel in range(1, expr.size + 2):
        _assert_agree(expr, sig, (5,), fuel)


def test_compile_cache_is_identity_keyed():
    e1 = Const(1, INT, "e")
    e2 = Const(1, INT, "e")
    assert compile_expr(e1) is compile_expr(e1)
    assert compile_expr(e1) is not compile_expr(e2)
