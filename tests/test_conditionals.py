"""Tests for the conditional strategy (repro.core.conditionals, §5.2)."""

from repro.core.conditionals import (
    ConditionalStore,
    GuardRecord,
    ProgramRecord,
    bucket_programs,
    solve_cascade,
    solve_with_buckets,
)
from repro.core.dsl import DslBuilder
from repro.core.expr import Call, Const, Function, If, Param
from repro.core.types import BOOL, INT

NEG = Function("Neg", (INT,), INT, lambda a: -a)
LE = Function("Le", (INT, INT), BOOL, lambda a, b: a <= b)


def x():
    return Param("x", INT, "e")


def const(v):
    return Const(v, INT, "e")


def guard(v):
    return Call(LE, (x(), const(v)), "b")


def store_with(programs, guards, n):
    store = ConditionalStore(n)
    for program, passed in programs:
        store.record_program(program, frozenset(passed))
    for g, true_set, errors in guards:
        store.record_guard(g, frozenset(true_set), frozenset(errors))
    return store


class TestStore:
    def test_smallest_program_per_set_kept(self):
        store = ConditionalStore(2)
        big = Call(NEG, (Call(NEG, (x(),), "e"),), "e")
        store.record_program(big, frozenset({0}))
        store.record_program(x(), frozenset({0}))
        assert store.programs[0].program == x()

    def test_empty_sets_dropped(self):
        store = ConditionalStore(2)
        store.record_program(x(), frozenset())
        assert not store.programs

    def test_degenerate_guards_dropped(self):
        store = ConditionalStore(2)
        store.record_guard(guard(0), frozenset({0, 1}))  # true everywhere
        store.record_guard(guard(1), frozenset())  # false everywhere
        assert not store.guards

    def test_splitting_guard_kept(self):
        store = ConditionalStore(2)
        store.record_guard(guard(0), frozenset({0}))
        assert len(store.guards) == 1


class TestCascade:
    def test_two_branch_solution(self):
        store = store_with(
            programs=[(const(-1), {0}), (const(1), {1, 2})],
            guards=[(guard(0), {0}, ())],
            n=3,
        )
        result = solve_cascade(store, frozenset({0, 1, 2}), 2, "e")
        assert isinstance(result, If)
        assert result.num_branches == 2

    def test_requires_full_cover(self):
        store = store_with(
            programs=[(const(-1), {0})],
            guards=[(guard(0), {0}, ())],
            n=2,
        )
        assert solve_cascade(store, frozenset({0, 1}), 2, "e") is None

    def test_respects_branch_limit(self):
        # Needs 3 branches; limit 2 must fail.
        store = store_with(
            programs=[
                (const(0), {0}),
                (const(1), {1}),
                (const(2), {2}),
            ],
            guards=[
                (guard(0), {0}, ()),
                (guard(1), {0, 1}, ()),
            ],
            n=3,
        )
        assert solve_cascade(store, frozenset({0, 1, 2}), 2, "e") is None
        three = solve_cascade(store, frozenset({0, 1, 2}), 3, "e")
        assert three is not None and three.num_branches == 3

    def test_fewest_branches_preferred(self):
        store = store_with(
            programs=[
                (const(0), {0}),
                (const(1), {1, 2}),
                (const(2), {2}),
            ],
            guards=[
                (guard(0), {0}, ()),
                (guard(1), {0, 1}, ()),
            ],
            n=3,
        )
        result = solve_cascade(store, frozenset({0, 1, 2}), 3, "e")
        assert result is not None
        assert result.num_branches == 2

    def test_erroring_guard_not_routed(self):
        store = store_with(
            programs=[(const(-1), {0}), (const(1), {1})],
            guards=[(guard(0), {0}, {1})],  # errors on example 1
            n=2,
        )
        # The guard crashes on a remaining example, so no cascade exists.
        assert solve_cascade(store, frozenset({0, 1}), 2, "e") is None

    def test_single_covering_program_returns_none(self):
        store = store_with(
            programs=[(x(), {0, 1})],
            guards=[(guard(0), {0}, ())],
            n=2,
        )
        assert solve_cascade(store, frozenset({0, 1}), 2, "e") is None

    def test_branch_limit_below_two(self):
        store = store_with(
            programs=[(const(0), {0}), (const(1), {1})],
            guards=[(guard(0), {0}, ())],
            n=2,
        )
        assert solve_cascade(store, frozenset({0, 1}), 1, "e") is None


def make_dsl():
    b = DslBuilder("t", start="P")
    b.nt("P", INT).nt("e", INT).nt("b", BOOL)
    b.param("e")
    b.rule("e", NEG, ["e"])
    b.rule("b", LE, ["e", "e"])
    b.conditional("P", guard_nt="b", branch_nt="e")
    return b.build()


class TestBuckets:
    def test_top_level_bucket_exists(self):
        dsl = make_dsl()
        store = store_with(
            programs=[(const(0), {0}), (const(1), {1})],
            guards=[],
            n=2,
        )
        buckets = bucket_programs(store, dsl, root_nt="P")
        assert any(b.context_root is None for b in buckets)

    def test_nested_bucket_shares_context(self):
        dsl = make_dsl()
        p1 = Call(NEG, (const(0),), "e")
        p2 = Call(NEG, (const(1),), "e")
        store = store_with(
            programs=[(p1, {0}), (p2, {1})],
            guards=[],
            n=2,
        )
        buckets = bucket_programs(store, dsl, root_nt="P")
        nested = [b for b in buckets if b.context_root is not None]
        # Both programs share the context Neg(•).
        shared = [
            b
            for b in nested
            if len(buckets[b]) == 2 and str(b.context_root) == "Neg(•)"
        ]
        assert shared

    def test_solve_with_buckets_builds_nested_conditional(self):
        dsl = make_dsl()
        p1 = Call(NEG, (const(5),), "e")  # -5: right for example 0
        p2 = Call(NEG, (const(7),), "e")  # -7: right for example 1
        store = store_with(
            programs=[(p1, {0}), (p2, {1})],
            guards=[(guard(0), {0}, ())],
            n=2,
        )
        result = solve_with_buckets(store, dsl, frozenset({0, 1}), 2, "P")
        assert result is not None
        # Either a top-level If over the two programs or Neg(If(...)).
        assert "if" in str(result)
