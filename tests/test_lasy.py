"""Tests for the LaSy front end (parser, runner, codegen)."""

import pytest

from repro.core.budget import Budget
from repro.core.dsl import Signature
from repro.core.expr import Call, Const, Function, If, Param
from repro.core.types import BOOL, INT, STRING, XML, list_of
from repro.lasy.codegen import to_csharp, to_python
from repro.lasy.parser import (
    LasyParseError,
    parse_lasy,
    parse_lasy_type,
    tokenize,
    unescape,
)
from repro.lasy.program import RequireStmt
from repro.lasy.runner import run_lasy, synthesize


class TestTypeNames:
    def test_basic_types(self):
        assert parse_lasy_type("string") == STRING
        assert parse_lasy_type("int") == INT
        assert parse_lasy_type("bool") == BOOL

    def test_arrays(self):
        assert parse_lasy_type("string[]") == list_of(STRING)
        assert parse_lasy_type("int[]") == list_of(INT)

    def test_xml_types(self):
        assert parse_lasy_type("XDocument") == XML
        assert parse_lasy_type("XElement") == XML

    def test_unknown_rejected(self):
        with pytest.raises(LasyParseError):
            parse_lasy_type("Widget")


class TestLexer:
    def test_comments_skipped(self):
        tokens = tokenize("language x; // a comment\n")
        assert [t.text for t in tokens] == ["language", "x", ";"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens] == [1, 2, 3]

    def test_unescape(self):
        assert unescape(r"a\nb\t\"") == 'a\nb\t"'

    def test_bad_escape_rejected(self):
        with pytest.raises(LasyParseError):
            unescape(r"\q")


class TestParser:
    SOURCE = """
        language strings;
        // Word wrap, abbreviated.
        function string WordWrap(string text, int length);
        lookup string Venue(string abbr);
        require WordWrap("Word", 4) == "Word";
        require Venue("PLDI") == "conference";
        require WordWrap("How are you?", 9) == "How are\\nyou?";
    """

    def test_structure(self):
        program = parse_lasy(self.SOURCE)
        assert program.language == "strings"
        assert [d.name for d in program.declarations] == ["WordWrap", "Venue"]
        assert program.declarations[1].is_lookup
        assert len(program.examples) == 3

    def test_signature_types(self):
        program = parse_lasy(self.SOURCE)
        sig = program.declarations[0].signature
        assert sig.params == (("text", STRING), ("length", INT))
        assert sig.return_type == STRING

    def test_escapes_decoded(self):
        program = parse_lasy(self.SOURCE)
        assert program.examples[2].output == "How are\nyou?"

    def test_example_order_preserved(self):
        program = parse_lasy(self.SOURCE)
        assert [e.func_name for e in program.examples] == [
            "WordWrap",
            "Venue",
            "WordWrap",
        ]

    def test_array_literals(self):
        program = parse_lasy(
            """
            language tables;
            function Table F(Table t);
            require F({{"a", "b"}, {"c", "d"}}) == {{"a"}};
            """
        )
        assert program.examples[0].args == ((("a", "b"), ("c", "d")),)

    def test_empty_array(self):
        program = parse_lasy(
            """
            language pexfun;
            function int F(int[] a);
            require F({}) == 0;
            """
        )
        assert program.examples[0].args == ((),)

    def test_booleans_and_negatives(self):
        program = parse_lasy(
            """
            language pexfun;
            function bool F(int x);
            require F(-3) == true;
            """
        )
        assert program.examples[0].args == (-3,)
        assert program.examples[0].output is True

    def test_undeclared_function_rejected(self):
        with pytest.raises(ValueError):
            parse_lasy(
                """
                language strings;
                function string F(string s);
                require G("x") == "y";
                """
            )

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            parse_lasy(
                """
                language strings;
                function string F(string s);
                require F("x", "y") == "z";
                """
            )

    def test_missing_semicolon_rejected(self):
        with pytest.raises(LasyParseError):
            parse_lasy("language strings")

    def test_duplicate_declarations_rejected(self):
        with pytest.raises(ValueError):
            parse_lasy(
                """
                language strings;
                function string F(string s);
                function string F(string s);
                """
            )


class TestRunner:
    def test_pexfun_single_function(self):
        result = synthesize(
            """
            language pexfun;
            function int Double(int x);
            require Double(2) == 4;
            require Double(5) == 10;
            """,
            budget_factory=lambda: Budget(
                max_seconds=10, max_expressions=50_000
            ),
        )
        assert result.success
        assert result.functions["Double"](21) == 42

    def test_lookup_only_program(self):
        result = synthesize(
            """
            language pexfun;
            lookup string Name(int code);
            require Name(1) == "one";
            require Name(2) == "two";
            """
        )
        assert result.success
        assert result.functions["Name"](2) == "two"
        with pytest.raises(Exception):
            result.functions["Name"](3)

    def test_helper_function_via_lasy_fn(self):
        # Greet needs Concatenate(Expand(SubStr(...)), ConstStr("!")) —
        # the pieces enter the pool long before plain enumeration could
        # reach the composed program, so this relies on the composition
        # strategies getting a final pass over the pool when the
        # expression budget dies mid-generation (see _run_dbs).
        result = synthesize(
            """
            language strings;
            lookup string Expand(string s);
            function string Greet(string s);
            require Expand("hi") == "hello";
            require Expand("yo") == "greetings";
            require Greet("hi x") == "hello!";
            require Greet("yo y") == "greetings!";
            """,
            budget_factory=lambda: Budget(
                max_seconds=25, max_expressions=60_000
            ),
        )
        assert result.success
        assert result.functions["Greet"]("hi z") == "hello!"

    def test_strategy_pass_on_budget_exhaustion(self):
        # Fast regression for the exhaustion-time strategy pass: with a
        # budget this small, enumeration alone cannot reach the answer
        # (the run reported timeout before the pass existed), but the
        # concat inverse-strategy can assemble it from pooled pieces.
        result = synthesize(
            """
            language strings;
            lookup string Expand(string s);
            function string Greet(string s);
            require Expand("hi") == "hello";
            require Expand("yo") == "greetings";
            require Greet("hi x") == "hello!";
            require Greet("yo y") == "greetings!";
            """,
            budget_factory=lambda: Budget(
                max_seconds=25, max_expressions=30_000
            ),
        )
        assert result.success

    def test_dbs_times_collected(self):
        result = synthesize(
            """
            language pexfun;
            function int Inc(int x);
            require Inc(1) == 2;
            require Inc(7) == 8;
            """
        )
        assert result.success
        assert result.dbs_times  # at least the first synthesis step


class TestCodegen:
    ADD = Function("Add", (INT, INT), INT, lambda a, b: a + b)
    LT = Function("Lt", (INT, INT), BOOL, lambda a, b: a < b)

    def test_python_plain(self):
        sig = Signature("f", (("x", INT),), INT)
        body = Call(self.ADD, (Param("x", INT, "e"), Const(1, INT, "e")), "e")
        code = to_python(sig, body)
        assert code == "def f(x):\n    return Add(x, 1)"

    def test_python_conditional_statements(self):
        sig = Signature("f", (("x", INT),), INT)
        guard = Call(self.LT, (Param("x", INT, "e"), Const(0, INT, "e")), "b")
        body = If(((guard, Const(-1, INT, "e")),), Const(1, INT, "e"), "P")
        code = to_python(sig, body)
        assert "if Lt(x, 0):" in code
        assert "else:" in code

    def test_python_executes_against_library(self):
        sig = Signature("f", (("x", INT),), INT)
        body = Call(self.ADD, (Param("x", INT, "e"), Const(1, INT, "e")), "e")
        namespace = {"Add": lambda a, b: a + b}
        exec(to_python(sig, body), namespace)
        assert namespace["f"](4) == 5

    def test_csharp_signature_types(self):
        sig = Signature("f", (("s", STRING), ("n", INT)), STRING)
        body = Param("s", STRING, "e")
        code = to_csharp(sig, body)
        assert code.startswith("string f(string s, int n)")
        assert "return s;" in code

    def test_csharp_conditional(self):
        sig = Signature("f", (("x", INT),), INT)
        guard = Call(self.LT, (Param("x", INT, "e"), Const(0, INT, "e")), "b")
        body = If(((guard, Const(-1, INT, "e")),), Const(1, INT, "e"), "P")
        code = to_csharp(sig, body)
        assert "if (Lt(x, 0))" in code

    def test_csharp_string_escaping(self):
        sig = Signature("f", (), STRING)
        body = Const('a"b\n', STRING, "e")
        assert '\\"' in to_csharp(sig, body)
        assert "\\n" in to_csharp(sig, body)
