"""Smoke tests for the experiment drivers (tiny configurations).

Each driver must run end to end, produce the structure its figure/table
needs, and render a report. Full-scale runs live in benchmarks/.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    ablation,
    cdf,
    dslsize,
    ordering,
    pexfun_exp,
    strings_exp,
    tables_exp,
    xml_exp,
)
from repro.pex.puzzles import PUZZLES

TINY = ExperimentConfig(budget_seconds=4.0, budget_expressions=40_000)


class TestOrderingMetric:
    def test_identity_is_zero(self):
        assert ordering.normalized_inversions([0, 1, 2, 3]) == 0.0

    def test_reversal_is_one(self):
        assert ordering.normalized_inversions([3, 2, 1, 0]) == 1.0

    def test_single_swap(self):
        assert ordering.normalized_inversions([1, 0, 2]) == pytest.approx(
            1 / 3
        )

    def test_short_sequences(self):
        assert ordering.normalized_inversions([0]) == 0.0
        assert ordering.normalized_inversions([]) == 0.0


class TestCdfResult:
    def test_percentiles(self):
        result = cdf.CdfResult(times=[1.0, 2.0, 3.0, 4.0])
        assert result.percentile(0.5) == 3.0
        assert result.fraction_under(2.5) == 0.5

    def test_curve_monotone(self):
        result = cdf.CdfResult(times=[5.0, 1.0, 3.0, 2.0, 4.0])
        curve = result.curve(points=5)
        xs = [t for t, _ in curve]
        ys = [f for _, f in curve]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_empty(self):
        result = cdf.CdfResult()
        assert result.percentile(0.5) == 0.0
        assert result.curve() == []


class TestDslSize:
    def test_synthetic_dsl_sizes(self):
        assert dslsize.make_arith_dsl(6).num_rules == 6
        assert dslsize.make_arith_dsl(30).num_rules == 30

    def test_small_sweep_shape(self):
        result = dslsize.run(TINY, sizes=(6, 12))
        assert len(result.points) == 2
        assert result.points[0].optimized_solved  # 6 rules is easy
        report = dslsize.report(result)
        assert "optimized" in report

    def test_optimizations_dominate(self):
        result = dslsize.run(TINY, sizes=(6, 20))
        assert result.limit(True) >= result.limit(False)


class TestPexfunDriver:
    def test_subset_run(self):
        subset = [p for p in PUZZLES if p.name in ("square", "identity-str")]
        rows = pexfun_exp.run(TINY, puzzles=subset, try_manual=False)
        assert len(rows) == 2
        assert all(r.solved for r in rows)
        assert "E4" in pexfun_exp.report(rows)

    def test_manual_sequences_are_valid(self):
        by_name = {p.name: p for p in PUZZLES}
        for name, examples in pexfun_exp.MANUAL_SEQUENCES.items():
            puzzle = by_name[name]
            for example in examples:
                assert puzzle.reference(*example.args) == example.output, (
                    f"manual sequence for {name} disagrees with reference"
                )


@pytest.mark.slow
class TestDriversEndToEnd:
    def test_strings_driver(self):
        rows = strings_exp.run(TINY, include_sketch=True, sketch_seconds=2)
        assert len(rows) == 15
        solved = sum(r.tds_solved for r in rows)
        ff = sum(r.flashfill_solved for r in rows)
        assert solved > ff  # TDS covers strictly more than FlashFill
        assert "E1" in strings_exp.report(rows)

    def test_tables_driver(self):
        rows = tables_exp.run(TINY)
        assert len(rows) == 8
        assert sum(r.tds_solved for r in rows) >= sum(
            r.specialized_solved for r in rows
        )
        assert "E2" in tables_exp.report(rows)

    def test_xml_driver(self):
        rows = xml_exp.run(TINY, include_sketch=True, sketch_seconds=2)
        assert len(rows) == 10
        assert sum(r.tds_solved for r in rows) > sum(
            r.sketch_solved for r in rows
        )
        assert "E3" in xml_exp.report(rows)

    def test_ablation_driver_full_dominates(self):
        result = ablation.run(TINY, suites=["tables"])
        counts = result.counts["tables"]
        assert counts["full"] >= counts["neither"]
        assert "F9" in ablation.report(result)

    def test_ordering_driver(self):
        result = ordering.run(TINY, reorderings_per_sequence=2)
        assert result.samples
        assert "F7" in ordering.report(result)

    def test_cdf_driver(self):
        result = cdf.run(TINY, suites=["tables"])
        assert result.times
        assert "F10" in cdf.report(result)
