"""Tests for the comparison baselines."""

import pytest

from repro.baselines.flashfill import (
    FlashFillError,
    learn,
    try_learn,
)
from repro.baselines.sketch import sketch_synthesize
from repro.baselines.tablesynth import synthesize_table_transform
from repro.core.budget import Budget
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.types import INT, STRING
from repro.domains.tables import table


class TestFlashFill:
    def test_constant_program(self):
        program = learn([Example(("a",), "X"), Example(("b",), "X")])
        assert program("zzz") == "X"

    def test_substring_generalizes(self):
        program = learn(
            [
                Example(("alice@example.com",), "example.com"),
                Example(("bob@research.org",), "research.org"),
            ]
        )
        assert program("carol@city.edu") == "city.edu"

    def test_concat_of_pieces(self):
        program = learn(
            [
                Example(("Dan Grossman",), "Grossman, D."),
                Example(("Sumit Gulwani",), "Gulwani, S."),
            ]
        )
        assert program("Peter Provost") == "Provost, P."

    def test_multiple_input_columns(self):
        program = learn(
            [
                Example(("Jane", "Doe"), "Doe, Jane"),
                Example(("Ann", "Lee"), "Lee, Ann"),
            ]
        )
        assert program("Alan", "Kay") == "Kay, Alan"

    def test_empty_version_space(self):
        # Same input must map to two different outputs: unsatisfiable.
        assert try_learn(
            [Example(("x",), "a"), Example(("x",), "b")]
        ) is None

    def test_non_string_rejected(self):
        with pytest.raises(FlashFillError):
            learn([Example((1,), "a")])

    def test_fast_on_core_tasks(self):
        import time

        start = time.monotonic()
        learn(
            [
                Example(("01/21/2001",), "21-01-2001"),
                Example(("12/03/1999",), "03-12-1999"),
            ]
        )
        # "well under a second" on the paper's machine; generous here.
        assert time.monotonic() - start < 2.0

    def test_describe_mentions_pieces(self):
        program = learn([Example(("ab cd",), "ab")])
        assert "SubStr" in program.describe() or "ConstStr" in program.describe()


class TestSketchLike:
    def dsl(self):
        b = DslBuilder("t", start="e")
        b.nt("e", INT)
        b.param("e")
        b.fn("e", "Add", ["e", "e"], lambda a, c: a + c)
        b.fn("e", "Mul", ["e", "e"], lambda a, c: a * c)
        b.constant("e")
        b.constants_from(lambda ex: {"e": [1, 2]})
        return b.build()

    def test_solves_trivial_task(self):
        sig = Signature("f", (("x", INT),), INT)
        result = sketch_synthesize(
            sig,
            [Example((2,), 4), Example((5,), 10)],
            self.dsl(),
            budget=Budget(max_seconds=10, max_expressions=50_000),
        )
        assert result.solved

    def test_times_out_on_starved_budget(self):
        sig = Signature("f", (("x", INT),), INT)
        result = sketch_synthesize(
            sig,
            [Example((2,), 4096), Example((3,), 6561)],  # x^12: deep
            self.dsl(),
            budget=Budget(max_expressions=2_000),
        )
        assert not result.solved


class TestTableSynth:
    def test_transpose_found(self):
        grid = table([["a", "b"], ["1", "2"]])
        result = synthesize_table_transform(
            [Example((grid,), tuple(zip(*grid)))]
        )
        assert result.solved
        assert "Transpose" in result.description

    def test_composition_depth_two(self):
        grid = table([["h", "h2"], ["a", "1"], ["b", "2"]])
        expected = tuple(zip(*grid[1:]))  # drop header, then transpose
        result = synthesize_table_transform([Example((grid,), expected)])
        assert result.solved

    def test_out_of_scope_unpivot_fails(self):
        grid = table(
            [["name", "jan", "feb"], ["ann", "3", "4"], ["bo", "", "7"]]
        )
        expected = (
            ("ann", "jan", "3"),
            ("ann", "feb", "4"),
            ("bo", "feb", "7"),
        )
        result = synthesize_table_transform([Example((grid,), expected)])
        assert not result.solved  # the §6.1.2 boundary

    def test_program_is_executable(self):
        grid = table([["a"], ["b"]])
        result = synthesize_table_transform(
            [Example((grid,), grid)]
        )
        assert result.solved
        assert result.program(grid) == grid
