"""Tests for repro.core.types."""

import pytest

from repro.core.types import (
    ANY,
    BOOL,
    INT,
    STRING,
    Type,
    TypeParseError,
    fun,
    fun_n,
    list_of,
    parse_type,
    types_compatible,
)


class TestTypeBasics:
    def test_atomic_str(self):
        assert str(STRING) == "str"
        assert str(INT) == "int"

    def test_list_str(self):
        assert str(list_of(STRING)) == "list<str>"

    def test_nested_list_str(self):
        assert str(list_of(list_of(INT))) == "list<list<int>>"

    def test_fun_type_str(self):
        assert str(fun(INT, STRING)) == "fun<int, str>"

    def test_structural_equality(self):
        assert list_of(INT) == list_of(INT)
        assert list_of(INT) != list_of(STRING)

    def test_types_are_hashable(self):
        assert len({list_of(INT), list_of(INT), STRING}) == 2

    def test_is_list(self):
        assert list_of(INT).is_list
        assert not INT.is_list

    def test_element_type(self):
        assert list_of(STRING).element_type() == STRING

    def test_element_type_on_non_list_raises(self):
        with pytest.raises(TypeError):
            INT.element_type()

    def test_is_function(self):
        assert fun(INT, INT).is_function
        assert not INT.is_function


class TestFunN:
    def test_single_arg(self):
        assert fun_n((INT,), STRING) == fun(INT, STRING)

    def test_curried_two_args(self):
        assert fun_n((INT, BOOL), STRING) == fun(INT, fun(BOOL, STRING))

    def test_zero_args_is_result(self):
        assert fun_n((), STRING) == STRING


class TestParseType:
    def test_atoms(self):
        assert parse_type("str") == STRING
        assert parse_type("int") == INT
        assert parse_type("bool") == BOOL

    def test_list(self):
        assert parse_type("list<str>") == list_of(STRING)

    def test_nested(self):
        assert parse_type("list<list<int>>") == list_of(list_of(INT))

    def test_fun(self):
        assert parse_type("fun<int, str>") == fun(INT, STRING)

    def test_whitespace_tolerated(self):
        assert parse_type(" list< str > ") == list_of(STRING)

    def test_unknown_name_becomes_nominal(self):
        assert parse_type("widget") == Type("widget")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(TypeParseError):
            parse_type("int>")

    def test_unterminated_args_rejected(self):
        with pytest.raises(TypeParseError):
            parse_type("list<int")

    def test_empty_rejected(self):
        with pytest.raises(TypeParseError):
            parse_type("")

    def test_roundtrip(self):
        for ty in (STRING, list_of(INT), fun(INT, list_of(STRING))):
            assert parse_type(str(ty)) == ty


class TestCompatibility:
    def test_same_type(self):
        assert types_compatible(INT, INT)

    def test_different_atoms(self):
        assert not types_compatible(INT, STRING)

    def test_any_accepts_everything(self):
        assert types_compatible(ANY, INT)
        assert types_compatible(list_of(INT), ANY)

    def test_any_inside_lists(self):
        assert types_compatible(list_of(ANY), list_of(INT))

    def test_list_mismatch(self):
        assert not types_compatible(list_of(INT), list_of(STRING))
