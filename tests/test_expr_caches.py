"""Differential tests for construction-time expression caches.

``Expr`` nodes are immutable and hash-consed, so their traversal
results — free lambda variables (``free_var_set``), recursion flags
(``has_recurse``), the structural hash, and the canonical form under
the DSL's rewrite rules — are computed once at construction (or, for
canonicalization, identity-memoized with a root-indexed rule scan).
This file checks every cached result against an independent fresh
recomputation over the same seeded 1000-expressions × 4-domains corpus
as ``test_compile_differential``, plus the expressions a real
enumeration run admits under each ``REPRO_ENUM`` mode (the mode governs
which pipeline *built* the pooled expressions).
"""

import random

import pytest

from repro.core.budget import Budget
from repro.core.dbs import DbsStats
from repro.core.dsl import Example, Signature
from repro.core.engine import Enumerator, PoolStore
from repro.core.expr import Expr, Lambda, Recurse, Var, free_vars, is_recursive
from repro.core.rewrite import (
    DslError,
    RewriteCycleError,
    Rewriter,
    match,
    order_key,
)
from repro.core.types import STRING
from repro.domains.registry import get_domain
from tests.test_compile_differential import (
    DOMAINS,
    MAX_DEPTH,
    ExprGen,
    _domain_cases,
    _GenFail,
)

N_EXPRS = 1000


# ---------------------------------------------------------------------
# Independent reference recomputations.


def _ref_free_vars(expr: Expr) -> frozenset:
    """Fresh recursive traversal — the pre-cache definition."""
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, Lambda):
        return _ref_free_vars(expr.body) - {p.name for p in expr.params}
    out: frozenset = frozenset()
    for child in expr.children():
        out |= _ref_free_vars(child)
    return out


def _ref_is_recursive(expr: Expr) -> bool:
    if isinstance(expr, Recurse):
        return True
    return any(_ref_is_recursive(c) for c in expr.children())


def _rebuild(expr: Expr) -> Expr:
    """A structurally identical tree of entirely fresh nodes, so every
    construction-time cache on the copy is computed from scratch."""
    children = expr.children()
    if not children:
        # Leaves are frozen dataclasses: with_children(()) returns the
        # node itself, so clone via the dataclass constructor instead.
        import dataclasses

        fields = {
            f.name: getattr(expr, f.name)
            for f in dataclasses.fields(expr)
            if f.name not in ("size", "_hash", "free_var_set", "has_recurse")
        }
        return type(expr)(**fields)
    return expr.with_children(tuple(_rebuild(c) for c in children))


class ReferenceRewriter(Rewriter):
    """A Rewriter whose rule scan tries *every* rule in declaration
    order (no root-name index), the pre-index reference semantics."""

    def _apply_rules(self, expr):
        changed = True
        guard = 0
        while changed:
            changed = False
            guard += 1
            if guard > 50:
                raise RewriteCycleError(str(expr))
            for rule, kind in self.rules:
                bindings = match(rule.lhs, expr)
                if bindings is None:
                    continue
                candidate = self._instantiate(rule.rhs, bindings, expr)
                if candidate == expr:
                    continue
                if kind == "guarded" and order_key(candidate) >= order_key(
                    expr
                ):
                    continue
                expr = candidate
                changed = True
        return expr


def _canonical(rewriter, expr):
    try:
        return ("ok", rewriter.canonicalize(expr))
    except (RewriteCycleError, DslError) as exc:
        return ("raise", type(exc).__name__, str(exc))


def _check_expr(expr: Expr, indexed: Rewriter, reference: ReferenceRewriter):
    assert expr.free_var_set == _ref_free_vars(expr)
    assert free_vars(expr) == expr.free_var_set
    assert expr.has_recurse == _ref_is_recursive(expr)
    assert is_recursive(expr) == expr.has_recurse
    for child in expr.children():
        _check_expr(child, indexed, reference)

    copy = _rebuild(expr)
    assert copy == expr
    assert hash(copy) == hash(expr)
    assert copy.size == expr.size
    assert copy.free_var_set == expr.free_var_set
    assert copy.has_recurse == expr.has_recurse

    assert _canonical(indexed, expr) == _canonical(reference, expr)


# ---------------------------------------------------------------------
# The seeded corpus (mirrors test_compile_differential).


@pytest.mark.parametrize("domain_name", DOMAINS)
def test_cached_traversals_match_fresh_recomputation(domain_name):
    rng = random.Random(f"expr-caches-{domain_name}")
    cases = _domain_cases(domain_name)
    assert cases, f"no generation cases for domain {domain_name}"
    dsl = cases[0][0]
    indexed = Rewriter(dsl)
    reference = ReferenceRewriter(dsl)
    generated = 0
    failures = 0
    while generated < N_EXPRS:
        dsl, signature, inputs, constants = cases[generated % len(cases)]
        gen = ExprGen(dsl, signature, constants, rng)
        nt = rng.choice(
            [n for n in dsl.nonterminals if dsl.productions_for(n)]
        )
        try:
            expr = gen.gen(nt, rng.randint(1, MAX_DEPTH), {})
            expr = gen.maybe_wrap(expr, nt, {})
        except _GenFail:
            failures += 1
            assert failures < 10 * N_EXPRS, "generator starved"
            continue
        generated += 1
        _check_expr(expr, indexed, reference)
    assert generated >= N_EXPRS


# ---------------------------------------------------------------------
# Expressions built by the real enumeration pipelines.


@pytest.mark.parametrize("mode", ["batched", "classic"])
def test_pooled_expressions_have_exact_caches(mode):
    dsl = get_domain("strings").dsl()
    signature = Signature("f", (("v", STRING),), STRING)
    examples = [
        Example(("John Smith",), "J.S."),
        Example(("Jane Doe",), "J.D."),
    ]
    stats = DbsStats()
    pool = PoolStore(
        dsl,
        signature,
        examples,
        budget=Budget(max_seconds=60.0, max_expressions=6_000),
        metrics=stats.registry,
    )
    enumerator = Enumerator(pool, enum_mode=mode)
    enumerator.seed([])
    enumerator.advance()
    enumerator.advance()
    indexed = Rewriter(dsl)
    reference = ReferenceRewriter(dsl)
    checked = 0
    for nt in pool._entries:
        for entry in pool.iter_entries(nt):
            assert entry.expr.free_var_set == _ref_free_vars(entry.expr)
            assert entry.expr.has_recurse == _ref_is_recursive(entry.expr)
            assert indexed.canonicalize_root(entry.expr) == (
                ReferenceRewriter(dsl).canonicalize_root(entry.expr)
            )
            checked += 1
    assert checked > 50
    # Spot-check the full differential on a slice of admitted entries.
    sample = [
        e.expr
        for nt in sorted(pool._entries)
        for e in list(pool.iter_entries(nt))[:10]
    ]
    for expr in sample:
        _check_expr(expr, indexed, reference)
