"""Differential and unit tests for example scheduling (engine.schedule).

The correctness bar for all-admitting schedulers is strict: with no
timeout signal, an ``adaptive`` run must synthesize *byte-identical*
final programs to ``fifo`` — across all four paper domains, in both
enum modes, cold (pool rebuilt per DBS call) and warm (persistent
engine). The ``representative`` scheduler is held to a different
contract: it may leave satisfied examples out of the DBS constraint
set, but every skip must be verified against the final program and a
failed verification must re-admit the failing suffix (binary-searched)
until the program satisfies the full sequence.

Also covered here: the session-identity rules for ``TdsOptions.schedule``
(None ≡ "fifo" ≡ the ``REPRO_TDS_SCHEDULE`` env value), SessionCache
prefix-key compatibility when a scheduler is active, and the
cost-aware SessionCache eviction order (cheapest-to-rebuild first,
LRU among ties).
"""

import pytest

from repro.core.budget import Budget
from repro.core.dbs import DbsOptions
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.engine.cache import SessionCache
from repro.core.engine.keys import options_fingerprint
from repro.core.engine.schedule import (
    C_DEFERRED,
    C_RETRIED,
    C_SKIPPED,
    C_VERIFIED,
    SCHEDULERS,
    AdaptiveScheduler,
    FifoScheduler,
    RepresentativeScheduler,
    SchedulerRegistry,
    resolve_schedule,
)
from repro.core.tds import TdsOptions, TdsSession
from repro.core.types import BOOL, INT

DOMAIN_CASES = [
    ("strings", "extract-domain"),
    ("tables", "transpose"),
    ("xml", "add-classes"),
]
MODES = ["batched", "classic"]


def _options(schedule, mode="batched", warm=True):
    return TdsOptions(
        schedule=schedule,
        reuse_pool=warm,
        dbs=DbsOptions(enum_mode=mode),
    )


def _budget():
    return Budget(max_seconds=20, max_expressions=250_000)


def _programs(result):
    """The per-function final programs of a LaSy run, stringified."""
    return {
        name: str(fn_result.program)
        for name, fn_result in result.results.items()
    }


# -- registry and name resolution --------------------------------------


def test_registry_ships_three_schedulers():
    assert SCHEDULERS.names() == ["adaptive", "fifo", "representative"]
    assert isinstance(SCHEDULERS.create("fifo"), FifoScheduler)
    assert isinstance(SCHEDULERS.create("adaptive"), AdaptiveScheduler)
    assert isinstance(
        SCHEDULERS.create("representative"), RepresentativeScheduler
    )
    with pytest.raises(KeyError):
        SCHEDULERS.get("nope")


def test_registry_register_unregister():
    registry = SchedulerRegistry()
    registry.register("fifo", FifoScheduler)
    with pytest.raises(ValueError):
        registry.register("fifo", FifoScheduler)
    registry.register("fifo", AdaptiveScheduler, replace=True)
    assert isinstance(registry.create("fifo"), AdaptiveScheduler)
    registry.unregister("fifo")
    assert registry.names() == []


def test_resolve_schedule_env_fallback(monkeypatch):
    monkeypatch.delenv("REPRO_TDS_SCHEDULE", raising=False)
    assert resolve_schedule(None) == "fifo"
    assert resolve_schedule("adaptive") == "adaptive"
    monkeypatch.setenv("REPRO_TDS_SCHEDULE", "representative")
    assert resolve_schedule(None) == "representative"
    # An explicit option always beats the environment.
    assert resolve_schedule("fifo") == "fifo"


def test_schedule_in_session_identity(monkeypatch):
    monkeypatch.delenv("REPRO_TDS_SCHEDULE", raising=False)
    default = options_fingerprint(TdsOptions())
    fifo = options_fingerprint(TdsOptions(schedule="fifo"))
    adaptive = options_fingerprint(TdsOptions(schedule="adaptive"))
    assert default == fifo
    assert adaptive != fifo
    # None resolves through the env switch, so a cached session's key
    # matches whether the scheduler came via option or environment.
    monkeypatch.setenv("REPRO_TDS_SCHEDULE", "adaptive")
    assert options_fingerprint(TdsOptions()) == adaptive


# -- byte-identical differential: adaptive vs fifo ---------------------


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("warm", [True, False], ids=["warm", "cold"])
@pytest.mark.parametrize("suite_name, bench_name", DOMAIN_CASES)
def test_adaptive_matches_fifo(suite_name, bench_name, mode, warm):
    from repro.suites import ALL_SUITES

    benchmark = next(
        b for b in ALL_SUITES[suite_name] if b.name == bench_name
    )
    fifo = benchmark.run(
        budget_factory=_budget, options=_options("fifo", mode, warm)
    )
    adaptive = benchmark.run(
        budget_factory=_budget, options=_options("adaptive", mode, warm)
    )
    assert fifo.success and adaptive.success
    assert _programs(fifo) == _programs(adaptive)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("warm", [True, False], ids=["warm", "cold"])
def test_adaptive_matches_fifo_pexfun(mode, warm):
    from repro.pex import PUZZLES, play

    puzzle = next(p for p in PUZZLES if p.name == "max-of-two")
    budget = lambda: Budget(max_seconds=8, max_expressions=80_000)
    fifo = play(
        puzzle, budget_factory=budget, options=_options("fifo", mode, warm)
    )
    adaptive = play(
        puzzle,
        budget_factory=budget,
        options=_options("adaptive", mode, warm),
    )
    assert fifo.solved and adaptive.solved
    assert str(fifo.program) == str(adaptive.program)


# -- scheduler-session fixtures ----------------------------------------


def _max_dsl():
    b = DslBuilder("schedmax", start="P")
    b.nt("P", INT).nt("e", INT).nt("b", BOOL)
    b.conditional("P", guard_nt="b", branch_nt="e")
    b.fn("e", "Add", ["e", "e"], lambda a, c: a + c)
    b.fn("b", "Lt", ["e", "e"], lambda a, c: a < c)
    b.param("e")
    b.constant("e")
    b.constants_from(lambda examples: {"e": [0, 1]})
    return b.build()


MAX_SIG = Signature("f", (("x", INT), ("y", INT)), INT)


def _max_session(schedule, timeout_s=None):
    return TdsSession(
        MAX_SIG,
        _max_dsl(),
        budget_factory=lambda: Budget(max_seconds=10, max_expressions=60_000),
        options=TdsOptions(schedule=schedule, timeout_s=timeout_s),
    )


# -- representative: skip, verify, binary-search re-admission ----------


def test_representative_skips_then_readmits_failing_suffix():
    session = _max_session("representative")
    # f = max(x, y). After (1,1)->1 the program satisfies (5,2)->5 (it
    # is x-shaped), so example 1 is skipped; admitting (2,7)->7 flips
    # the program to a shape that fails the skip, and wrapup must
    # re-admit it.
    examples = [
        Example((1, 1), 1),
        Example((5, 2), 5),
        Example((2, 7), 7),
    ]
    before = (C_SKIPPED.value, C_RETRIED.value, C_VERIFIED.value)
    for example in examples:
        step = session.feed(example)
        assert step.action == "queued"
    result = session.finalize()
    assert result.success
    assert session.satisfies_all()
    actions = [(s.example_index, s.action) for s in session.steps]
    assert (1, "skipped") in actions
    # The failed verification admitted example 1 after all: it appears
    # in the admitted order behind the examples that were never skipped.
    assert session._admitted == [0, 2, 1]
    assert session._skipped == []
    assert C_SKIPPED.value - before[0] >= 1
    assert C_RETRIED.value - before[1] >= 1
    assert C_VERIFIED.value - before[2] >= 1


def test_representative_binary_search_keeps_clean_prefix():
    session = _max_session("representative")
    # Admit one example so the program is x-shaped, then hand wrapup a
    # skipped list whose prefix the program satisfies and whose suffix
    # it fails: only the suffix may be re-admitted.
    session.feed(Example((2, 1), 2))
    session.drain()
    program = session.program
    assert program is not None
    extras = [
        Example((3, 0), 3),   # satisfied by an x-shaped program
        Example((4, 1), 4),   # satisfied
        Example((0, 5), 5),   # fails: first failing position
        Example((1, 9), 9),   # fails
    ]
    base = len(session.examples)
    session.examples.extend(extras)
    session._skipped.extend(range(base, base + len(extras)))
    assert session._satisfies(program, extras[0])
    assert session._satisfies(program, extras[1])
    assert not session._satisfies(program, extras[2])
    result = session.finalize()
    assert result.success
    # The clean prefix stayed skipped (re-verified against the final
    # program); the failing suffix was admitted in order.
    assert session._skipped == [base, base + 1]
    assert session._admitted == [0, base + 2, base + 3]
    assert session.satisfies_all()


def test_representative_verified_skips_stay_skipped():
    session = _max_session("representative")
    # A duplicate example is always satisfied by the program the first
    # copy produced: it must be skipped and never admitted.
    session.feed(Example((4, 1), 4))
    session.feed(Example((4, 1), 4))
    result = session.finalize()
    assert result.success
    assert session._admitted == [0]
    assert session._skipped == [1]


# -- adaptive: deferral, retry, ordering, deadlines --------------------


class _FakeTimeout:
    reason = "deadline"


class _FakeStats:
    elapsed = 0.25
    expressions = 0
    programs_tested = 0


class _FakeDbsResult:
    program = None
    stats = _FakeStats()
    timeout = _FakeTimeout()


def test_adaptive_defers_timed_out_example_and_retries():
    session = _max_session("adaptive")
    examples = [
        Example((1, 1), 1),
        Example((5, 2), 5),
        Example((2, 7), 7),
    ]
    for example in examples:
        assert session.feed(example).action == "queued"
    # Make the *first* admission time out; the scheduler must push its
    # retry behind the rest of the queue instead of burning the wall on
    # it immediately.
    real_dbs = session._dbs_step
    calls = {"n": 0}

    def flaky_dbs(prefix, iteration_cap_s=None):
        calls["n"] += 1
        if calls["n"] == 1:
            return _FakeDbsResult()
        return real_dbs(prefix, iteration_cap_s=iteration_cap_s)

    session._dbs_step = flaky_dbs
    before = (C_DEFERRED.value, C_RETRIED.value)
    result = session.finalize()
    assert result.success
    assert C_DEFERRED.value - before[0] == 1
    assert C_RETRIED.value - before[1] == 1
    assert session._deferred == []
    # The injected timeout marked its example hard; a later queue must
    # order that fingerprint last.
    fp = session._example_fingerprint(0)
    assert fp in session._hard_fingerprints
    timeouts = [s for s in session.steps if s.action == "timeout"]
    assert timeouts and timeouts[0].example_index == 0


def test_adaptive_order_is_arrival_without_signal():
    session = _max_session("adaptive")
    for example in [Example((1, 1), 1), Example((5, 2), 5)]:
        session.feed(example)
    scheduler = session._scheduler()
    assert scheduler.order(session, list(session._pending)) == [0, 1]


def test_adaptive_order_puts_hard_and_expensive_last():
    session = _max_session("adaptive")
    for example in [
        Example((1, 1), 1),
        Example((5, 2), 5),
        Example((2, 7), 7),
    ]:
        session.feed(example)
    scheduler = session._scheduler()
    session._example_costs[session._example_fingerprint(0)] = 3.0
    assert scheduler.order(session, [0, 1, 2]) == [1, 2, 0]
    session._hard_fingerprints.add(session._example_fingerprint(1))
    assert scheduler.order(session, [0, 1, 2]) == [2, 0, 1]


def test_adaptive_iteration_deadline_needs_session_wall():
    unwalled = _max_session("adaptive")
    scheduler = AdaptiveScheduler()
    # No timeout_s: capping would change plain budgeted runs.
    assert scheduler.iteration_deadline(unwalled, 0, 2) is None

    walled = _max_session("adaptive", timeout_s=10.0)
    cap = scheduler.iteration_deadline(walled, 0, 2)
    assert cap is not None
    assert scheduler.min_slice_s <= cap <= 10.0
    # The share escalates with consecutive failures...
    walled.failures_in_a_row = 1
    assert scheduler.iteration_deadline(walled, 0, 2) > cap * 1.5
    # ...and the last pending admission gets everything.
    assert scheduler.iteration_deadline(walled, 0, 0) is None


# -- SessionCache: prefix keys under scheduling, cost-aware eviction ---


SOURCE = """
language pexfun;
function int Pick(int x, int y);
require Pick(1, 1) == 1;
require Pick(5, 2) == 5;
require Pick(2, 7) == 7;
"""

EXTENDED = SOURCE + "require Pick(0, 3) == 3;\n"


def test_session_cache_prefix_hit_under_adaptive():
    from repro.lasy.parser import parse_lasy
    from repro.lasy.runner import run_lasy

    budget = lambda: Budget(max_seconds=10, max_expressions=80_000)
    options = TdsOptions(schedule="adaptive")
    with SessionCache(capacity=4) as cache:
        cold = run_lasy(
            parse_lasy(SOURCE),
            budget_factory=budget,
            options=options,
            session_cache=cache,
        )
        assert cold.success
        assert cold.cache_info["Pick"] == {
            "hit": False,
            "reused_examples": 0,
        }
        warm = run_lasy(
            parse_lasy(EXTENDED),
            budget_factory=budget,
            options=options,
            session_cache=cache,
        )
        assert warm.success
        assert warm.cache_info["Pick"]["hit"]
        # Adaptive admitted in arrival order (no timeout signal), so
        # the released prefix key matches the extended request exactly.
        assert warm.cache_info["Pick"]["reused_examples"] == 3


def test_session_cache_keys_schedulers_apart():
    from repro.lasy.parser import parse_lasy
    from repro.lasy.runner import run_lasy

    budget = lambda: Budget(max_seconds=10, max_expressions=80_000)
    with SessionCache(capacity=4) as cache:
        run_lasy(
            parse_lasy(SOURCE),
            budget_factory=budget,
            options=TdsOptions(schedule="fifo"),
            session_cache=cache,
        )
        other = run_lasy(
            parse_lasy(SOURCE),
            budget_factory=budget,
            options=TdsOptions(schedule="representative"),
            session_cache=cache,
        )
        # A different scheduler is a different constraint-set policy:
        # it must never check out another scheduler's session.
        assert not other.cache_info["Pick"]["hit"]


class _StubKey:
    def __init__(self, tag):
        self.tag = tag
        self.examples = ()

    def base(self):
        return "stub-base"

    def __hash__(self):
        return hash(self.tag)

    def __eq__(self, other):
        return isinstance(other, _StubKey) and self.tag == other.tag

    def __repr__(self):
        return f"_StubKey({self.tag!r})"


class _StubSession:
    def __init__(self, tag, cost):
        self._key = _StubKey(tag)
        self.rebuild_cost_s = cost
        self.suspended = False

    def suspend(self):
        self.suspended = True

    def session_key(self):
        return self._key


def test_cache_evicts_cheapest_to_rebuild():
    cache = SessionCache(capacity=2)
    cache.release(_StubSession("a", 5.0))
    cache.release(_StubSession("b", 0.1))
    cache.release(_StubSession("c", 3.0))
    assert [k.tag for k in cache.keys()] == ["a", "c"]
    assert cache.stats()["evicted"] == 1


def test_cache_eviction_falls_back_to_lru_on_ties():
    cache = SessionCache(capacity=2)
    for tag in ("a", "b", "c"):
        cache.release(_StubSession(tag, 0.0))
    # No cost signal: plain LRU, oldest out first.
    assert [k.tag for k in cache.keys()] == ["b", "c"]


def test_cache_cheap_newcomer_cannot_displace_expensive_entries():
    cache = SessionCache(capacity=2)
    cache.release(_StubSession("a", 5.0))
    cache.release(_StubSession("b", 3.0))
    cache.release(_StubSession("c", 0.01))
    assert [k.tag for k in cache.keys()] == ["a", "b"]


def test_cache_acquire_clears_cost_bookkeeping():
    cache = SessionCache(capacity=2)
    cache.release(_StubSession("a", 5.0))
    session, matched = cache.acquire(_StubKey("x"), [])
    assert session is not None and matched == 0
    assert len(cache) == 0
    assert cache._costs == {}
    cache.release(session)
    cache.clear()
    assert cache._costs == {}
