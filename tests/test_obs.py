"""Tests for the observability layer (repro.obs): tracing, metrics,
and the per-phase trace report."""

import io
import json
import time

import pytest

from repro.cli import main
from repro.core.budget import Budget
from repro.core.dbs import DbsStats
from repro.lasy.runner import synthesize
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    JsonlTracer,
    NullTracer,
    Registry,
    TraceParseError,
    build_report,
    format_label_key,
    load_events,
    render_json,
    render_text,
    to_json,
    tracing,
)
from repro.obs.trace import get_tracer, set_tracer

ADD1 = """
language pexfun;
function int Add1(int x);
require Add1(3) == 4;
require Add1(10) == 11;
"""


def small_budget():
    return Budget(max_seconds=10, max_expressions=50_000)


class TestSpans:
    def test_nesting_parent_ids(self):
        buf = io.StringIO()
        tracer = JsonlTracer(buf)
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            tracer.event("note", detail=1)
        records = [json.loads(l) for l in buf.getvalue().splitlines()]
        by_name = {r["name"]: r for r in records}
        # Spans are written at close: children before parents.
        assert [r["name"] for r in records if r["kind"] == "span"] == [
            "inner",
            "middle",
            "outer",
        ]
        assert by_name["outer"]["parent"] is None
        assert by_name["middle"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["parent"] == by_name["middle"]["id"]
        # The event fired while only "outer" was open.
        assert by_name["note"]["parent"] == by_name["outer"]["id"]

    def test_timing_monotonicity(self):
        buf = io.StringIO()
        tracer = JsonlTracer(buf)
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        records = [json.loads(l) for l in buf.getvalue().splitlines()]
        by_name = {r["name"]: r for r in records}
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner["dur"] >= 0.01
        assert outer["dur"] >= inner["dur"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9

    def test_span_attrs_and_set(self):
        buf = io.StringIO()
        tracer = JsonlTracer(buf)
        with tracer.span("work", phase="x") as span:
            span.set(outcome="ok", count=3)
        record = json.loads(buf.getvalue())
        assert record["attrs"] == {"phase": "x", "outcome": "ok", "count": 3}

    def test_span_records_error_type(self):
        buf = io.StringIO()
        tracer = JsonlTracer(buf)
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        record = json.loads(buf.getvalue())
        assert record["attrs"]["error"] == "ValueError"

    def test_tracing_installs_and_restores(self):
        assert get_tracer() is NULL_TRACER
        buf = io.StringIO()
        with tracing(JsonlTracer(buf)) as tracer:
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_null_tracer_is_cheap(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        # All span() calls share one stateless object: no per-call
        # allocation on the hot path when tracing is off.
        assert tracer.span("a") is tracer.span("b", attr=1)
        with tracer.span("a") as span:
            span.set(anything="goes")


class TestMetrics:
    def test_counter_scalar_and_labels(self):
        reg = Registry(detailed=True)
        c = reg.counter("hits")
        c.value += 2  # hot-path idiom
        c.inc(3, nt="e", size=1)
        c.inc(1, size=1, nt="e")  # label order must not matter
        c.label(5, nt="f")  # bucket only, total already counted
        assert c.value == 6
        snap = c.snapshot()
        assert snap["value"] == 6
        assert snap["labels"] == {"nt=e,size=1": 4, "nt=f": 5}

    def test_gauge_and_histogram(self):
        reg = Registry()
        g = reg.gauge("pool_size")
        g.set(7.0)
        g.set(9.0)
        assert g.value == 9.0
        h = reg.histogram("batch")
        for v in (1.0, 3.0, 2.0):
            h.observe(v, gen=1)
        assert (h.count, h.total, h.min, h.max) == (3, 6.0, 1.0, 3.0)
        assert h.mean == 2.0
        assert h.snapshot()["labels"]["gen=1"]["count"] == 3

    def test_registry_type_conflict(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_registry_value_and_snapshot(self):
        reg = Registry()
        reg.counter("a").value = 4
        reg.gauge("b").set(2.5)
        assert reg.value("a") == 4
        assert reg.value("missing", default=-1) == -1
        snap = reg.snapshot()
        assert snap["a"] == {"type": "counter", "value": 4}
        assert json.dumps(snap)  # JSON-serializable
        assert reg.snapshot_flat() == {"a": 4, "b": 2.5}

    def test_format_label_key(self):
        assert format_label_key((("nt", "e"), ("size", 3))) == "nt=e,size=3"


class TestRegistryMerge:
    """Regression tests for worker-snapshot merge-back (the
    multiprocessing path: workers ship ``snapshot()`` dicts to the
    parent, which absorbs them without corrupting local attribution)."""

    def test_counter_merge_and_local_value(self):
        parent = Registry(detailed=True)
        parent.counter("eval.run_program").inc(5)

        worker = Registry(detailed=True)
        worker.counter("eval.run_program").inc(7, nt="e")
        worker.counter("eval.errors").inc(2)

        parent.merge(worker.snapshot())
        assert parent.value("eval.run_program") == 12
        assert parent.local_value("eval.run_program") == 5
        assert parent.value("eval.errors") == 2
        assert parent.local_value("eval.errors") == 0
        snap = parent.counter("eval.run_program").snapshot()
        assert snap["labels"] == {"nt=e": 7}

    def test_delta_attribution_survives_merge_in_region(self):
        # The dbs.py pattern: a merge landing between the before/after
        # reads must not be attributed to the local region.
        reg = Registry()
        reg.counter("eval.run_program").inc(10)
        before = reg.local_value("eval.run_program")
        reg.counter("eval.run_program").inc(3)  # local work
        other = Registry()
        other.counter("eval.run_program").inc(100)
        reg.merge(other.snapshot())  # worker lands mid-region
        after = reg.local_value("eval.run_program")
        assert after - before == 3

    def test_gauge_and_histogram_merge(self):
        parent = Registry()
        parent.gauge("pool").set(4.0)
        parent.histogram("gen").observe(2.0)

        worker = Registry()
        worker.gauge("pool").set(9.0)
        for v in (1.0, 5.0):
            worker.histogram("gen").observe(v, gen=1)

        parent.merge(worker.snapshot())
        assert parent.gauge("pool").value == 9.0  # last-write-wins
        h = parent.histogram("gen")
        assert (h.count, h.total, h.min, h.max) == (3, 8.0, 1.0, 5.0)
        merged_bucket = h.labeled[(("gen", "1"),)]
        assert (merged_bucket.count, merged_bucket.total) == (2, 6.0)

    def test_merge_is_json_roundtrip_safe(self):
        # Snapshots cross the process boundary as plain JSON.
        worker = Registry(detailed=True)
        worker.counter("c").inc(3, kind="x")
        worker.histogram("h").observe(1.5)
        wire = json.loads(json.dumps(worker.snapshot()))
        parent = Registry()
        parent.merge(wire)
        assert parent.value("c") == 3
        assert parent.histogram("h").count == 1

    def test_merge_twice_accumulates_counters(self):
        parent = Registry()
        worker = Registry()
        worker.counter("c").inc(4)
        snap = worker.snapshot()
        parent.merge(snap)
        parent.merge(snap)
        assert parent.value("c") == 8
        assert parent.local_value("c") == 0


class TestDbsStatsShim:
    def test_fields_read_and_write_registry(self):
        stats = DbsStats(elapsed=1.5, expressions=10, programs_tested=3)
        assert stats.elapsed == 1.5
        assert stats.expressions == 10
        assert stats.programs_tested == 3
        stats.expressions += 5
        assert stats.registry.value(DbsStats.EXPRESSIONS) == 15
        stats.registry.counter(DbsStats.GENERATIONS).value = 2
        assert stats.generations == 2
        assert "expressions=15" in repr(stats)

    def test_defaults_zero(self):
        stats = DbsStats()
        assert stats.elapsed == 0.0
        assert stats.expressions == 0
        assert stats.loop_candidates == 0
        assert stats.conditional_attempts == 0


class TestReport:
    def synthesize_traced(self):
        buf = io.StringIO()
        with tracing(JsonlTracer(buf)):
            result = synthesize(ADD1, budget_factory=small_budget)
        assert result.success
        return result, load_events(io.StringIO(buf.getvalue()))

    def test_roundtrip_totals_agree_with_stats(self):
        result, events = self.synthesize_traced()
        report = build_report(events)
        stats_elapsed = sum(
            s.dbs_time for r in result.results.values() for s in r.steps
        )
        stats_exprs = sum(
            s.expressions for r in result.results.values() for s in r.steps
        )
        # The acceptance criterion: report totals agree with DbsStats
        # within 5%.
        assert report.total_expressions == stats_exprs
        assert report.total_seconds == pytest.approx(stats_elapsed, rel=0.05)
        assert report.dbs_runs == 2
        # Self-times sum back to (at most) the traced wall time.
        assert sum(r.seconds for r in report.phases) <= report.wall_seconds * 1.05
        # Enumeration expressions come from span 'offered' attrs and
        # must also match the budget totals; batched-mode productions
        # charge under the 'enum' phase, classic ones under 'enumerate'.
        by_phase = {r.phase: r for r in report.phases}
        enum_exprs = sum(
            by_phase[p].expressions for p in ("enumerate", "enum")
            if p in by_phase
        )
        assert enum_exprs == stats_exprs

    def test_report_sections_render(self):
        _, events = self.synthesize_traced()
        report = build_report(events)
        text = render_text(report)
        assert "Per-phase attribution" in text
        assert "enumerate" in text
        assert "Top productions" in text
        assert "dbs.pool.offered" in text
        data = to_json(report)
        assert data["total_expressions"] == report.total_expressions
        assert json.loads(render_json(report)) == json.loads(
            json.dumps(data)
        )

    def test_counters_and_labels_merged(self):
        _, events = self.synthesize_traced()
        report = build_report(events)
        assert report.counters["dbs.expressions"] == report.total_expressions
        assert report.counters["eval.run_program"] > 0
        # Detailed (labeled) breakdowns are recorded when tracing is on.
        added_labels = report.labels["dbs.pool.added"]
        assert added_labels
        assert sum(added_labels.values()) == report.counters["dbs.pool.added"]

    def test_tds_actions_counted(self):
        _, events = self.synthesize_traced()
        report = build_report(events)
        assert report.actions.get("synthesized") == 2

    def test_nested_runs_excluded_from_totals(self):
        report = build_report(
            [
                {
                    "kind": "span",
                    "name": "dbs",
                    "id": 1,
                    "parent": None,
                    "ts": 0.0,
                    "dur": 2.0,
                    "attrs": {},
                },
                {
                    "kind": "span",
                    "name": "dbs",
                    "id": 2,
                    "parent": 1,
                    "ts": 0.5,
                    "dur": 1.0,
                    "attrs": {"nested": True},
                },
                {
                    "kind": "event",
                    "name": "dbs.metrics",
                    "parent": 1,
                    "ts": 2.0,
                    "attrs": {
                        "nested": True,
                        "metrics": {
                            "dbs.expressions": {
                                "type": "counter",
                                "value": 100,
                            }
                        },
                    },
                },
                {
                    "kind": "event",
                    "name": "dbs.metrics",
                    "parent": 1,
                    "ts": 2.0,
                    "attrs": {
                        "nested": False,
                        "metrics": {
                            "dbs.expressions": {
                                "type": "counter",
                                "value": 40,
                            }
                        },
                    },
                },
            ]
        )
        assert report.dbs_runs == 1
        assert report.nested_runs == 1
        assert report.total_seconds == 2.0
        # Only the top-level run's budget counts toward the total; the
        # nested sub-synthesis spends a separately spawned budget.
        assert report.total_expressions == 40
        # ... but its counters still aggregate.
        assert report.counters["dbs.expressions"] == 140

    def test_load_events_rejects_garbage(self):
        # A torn *final* line (a run killed mid-write) is dropped, the
        # same tolerance absorb_shard and the checkpoint journal apply.
        assert load_events(io.StringIO("not json\n")) == []
        good = '{"kind": "event", "name": "x", "ts": 0}'
        events = load_events(io.StringIO(good + "\n" + good[: len(good) // 2]))
        assert len(events) == 1
        # Corruption followed by complete records is real damage.
        with pytest.raises(TraceParseError):
            load_events(io.StringIO("not json\n" + good + "\n"))
        with pytest.raises(TraceParseError):
            load_events(io.StringIO('{"no": "kind"}\n'))
        assert load_events(io.StringIO("\n\n")) == []


class TestCli:
    def test_report_trace_command(self, tmp_path, capsys):
        lasy = tmp_path / "add1.lasy"
        lasy.write_text(ADD1)
        trace = tmp_path / "out.jsonl"
        rc = main(
            [
                "--timeout",
                "10",
                "--trace",
                str(trace),
                "synth",
                str(lasy),
            ]
        )
        assert rc == 0
        assert trace.exists()
        out = capsys.readouterr().out
        assert "report-trace" in out

        rc = main(["report-trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Per-phase attribution" in out

        rc = main(["report-trace", str(trace), "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["dbs_runs"] == 2

    def test_report_trace_missing_file(self, tmp_path, capsys):
        rc = main(["report-trace", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "no such trace" in capsys.readouterr().err


class TestOverhead:
    def test_disabled_tracing_overhead_smoke(self):
        # With the NullTracer installed, a synthesis run must not emit
        # anything and must not leave a tracer installed; the per-event
        # cost is one attribute check, which we sanity-check by timing
        # the guard itself rather than a full synthesis (wall-clock
        # comparisons of search runs are too noisy for CI).
        tracer = get_tracer()
        assert tracer is NULL_TRACER
        start = time.perf_counter()
        for _ in range(100_000):
            if tracer.enabled:  # pragma: no cover - never taken
                raise AssertionError
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5  # ~5µs per check would still pass

    def test_detailed_metrics_off_by_default(self):
        result = synthesize(ADD1, budget_factory=small_budget)
        assert result.success
        # Without tracing, runs record scalar totals but no labeled
        # breakdowns (those cost a dict update per expression).
        # DbsStats still exposes the historical fields.
        steps = [
            s
            for r in result.results.values()
            for s in r.steps
            if s.action == "synthesized"
        ]
        assert steps and all(s.expressions > 0 for s in steps)


class TestExperimentTracing:
    def make_benchmark(self):
        from repro.suites.benchmark import Benchmark

        return Benchmark(
            name="obs-add1", source=ADD1, domain="pexfun"
        )

    def test_run_suite_untraced(self):
        from repro.experiments.common import ExperimentConfig, run_suite

        config = ExperimentConfig(budget_seconds=10)
        outcomes = run_suite([self.make_benchmark()], config)
        assert outcomes[0].success

    def test_run_suite_traced_appends_across_suites(self, tmp_path):
        from repro.experiments.common import ExperimentConfig, run_suite

        trace = tmp_path / "suite.jsonl"
        config = ExperimentConfig(budget_seconds=10, trace_path=str(trace))
        bench = self.make_benchmark()
        # Drivers like ablation run several suites per process; later
        # suites must append rather than truncate the trace.
        assert run_suite([bench], config)[0].success
        assert run_suite([bench], config)[0].success
        report = build_report(load_events(str(trace)))
        assert report.dbs_runs == 4
        bench_spans = [
            e
            for e in load_events(str(trace))
            if e["kind"] == "span" and e["name"] == "benchmark"
        ]
        assert len(bench_spans) == 2
        assert all(
            s["attrs"] == {"benchmark": "obs-add1", "success": True}
            for s in bench_spans
        )


@pytest.mark.trace_smoke
class TestTraceSmoke:
    """End-to-end traced run + report agreement (the CI trace job)."""

    def test_traced_synthesis_report_agrees(self, tmp_path):
        trace = tmp_path / "smoke.jsonl"
        with tracing(JsonlTracer(str(trace))):
            result = synthesize(ADD1, budget_factory=small_budget)
        assert result.success
        report = build_report(load_events(str(trace)))
        stats_exprs = sum(
            s.expressions for r in result.results.values() for s in r.steps
        )
        assert report.total_expressions == stats_exprs
        assert report.phases  # attribution table is non-empty
        render_text(report)  # must not raise
