"""The runnable examples must actually run (quickstart in the fast pass,
the domain scenarios under --runslow)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


def test_quickstart():
    out = run_example("quickstart.py", timeout=120)
    assert "ToUpper(CharAt(Word(a, 1), 0))" in out
    assert "f('Alan Turing') = T" in out


@pytest.mark.slow
def test_table_normalization_example():
    out = run_example("table_normalization.py")
    assert out.count("success: True") >= 3


@pytest.mark.slow
def test_pexfun_game_example():
    out = run_example("pexfun_game.py", timeout=600)
    assert "square" in out
    assert out.count("solved") >= 3


@pytest.mark.slow
def test_string_transformations_example():
    out = run_example("string_transformations.py", timeout=600)
    assert out.count("success: True") >= 2


@pytest.mark.slow
def test_xml_example():
    out = run_example("xml_to_table.py", timeout=600)
    assert out.count("success: True") >= 2
