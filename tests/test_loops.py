"""Tests for the loop strategies (repro.core.loops, §5.3)."""

from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.evaluator import run_program
from repro.core.expr import Call, Const, Function, Param, Var
from repro.core.loops import (
    LoopCandidate,
    _decompose_for,
    _decompose_foreach,
    run_loop_strategies,
)
from repro.core.types import BOOL, INT, STRING, list_of

ADD = Function("Add", (INT, INT), INT, lambda a, b: a + b)
MUL = Function("Mul", (INT, INT), INT, lambda a, b: a * b)


def foreach_dsl():
    b = DslBuilder("t", start="P")
    b.nt("P", list_of(INT)).nt("e", INT)
    b.param("e")
    b.rule("e", MUL, ["e", "e"])
    b.foreach("P", body_nt="e")
    return b.build()


def for_dsl():
    b = DslBuilder("t", start="P")
    b.nt("P", INT).nt("e", INT)
    b.param("e")
    b.rule("e", ADD, ["e", "e"])
    b.for_loop("P", body_nt="e")
    b.unit("P", "e")
    return b.build()


def split_dsl():
    b = DslBuilder("t", start="P")
    b.nt("P", STRING).nt("e", STRING)
    b.param("e")
    b.foreach("P", body_nt="e", variants=("split",))
    return b.build()


class TestForeachDecomposition:
    SIG = Signature("f", (("xs", list_of(INT)),), list_of(INT))

    def test_paper_example(self):
        # (in = {3,5,4}, RET = {9,25,16}) → three body examples.
        examples = [Example(((3, 5, 4),), (9, 25, 16))]
        body = _decompose_foreach(self.SIG, examples, "xs", reverse=False)
        assert body is not None
        assert len(body) == 3
        assert body[0].args == ((3, 5, 4), 0, 3, ())
        assert body[0].output == 9
        assert body[2].args == ((3, 5, 4), 2, 4, (9, 25))

    def test_length_mismatch_fails_hypothesis(self):
        examples = [Example(((1, 2),), (1,))]
        assert (
            _decompose_foreach(self.SIG, examples, "xs", reverse=False)
            is None
        )

    def test_reverse_variant(self):
        examples = [Example(((1, 2, 3),), (3, 2, 1))]
        body = _decompose_foreach(self.SIG, examples, "xs", reverse=True)
        assert body is not None
        assert body[0].args[-2] == 3  # first iterated element


class TestForDecomposition:
    SIG = Signature("f", (("n", INT),), INT)

    def test_paper_example(self):
        # in=0..3 RET 0,1,3,6: body examples (i, acc) -> RET.
        examples = [
            Example((0,), 0),
            Example((1,), 1),
            Example((2,), 3),
            Example((3,), 6),
        ]
        decomposition = _decompose_for(self.SIG, examples, "n")
        assert decomposition is not None
        body, init, start = decomposition
        assert init == 0
        assert start == 1
        assert [(e.args, e.output) for e in body] == [
            ((1, 0), 1),
            ((2, 1), 3),
            ((3, 3), 6),
        ]

    def test_gaps_skip_pairs(self):
        examples = [Example((0,), 1), Example((2,), 2), Example((3,), 6)]
        decomposition = _decompose_for(self.SIG, examples, "n")
        assert decomposition is not None
        body, init, start = decomposition
        assert init == 1 and start == 1
        assert len(body) == 1  # only the (2,3) pair

    def test_no_pairs_at_all_fails(self):
        examples = [Example((0,), 0), Example((5,), 15)]
        assert _decompose_for(self.SIG, examples, "n") is None

    def test_non_int_param_fails(self):
        sig = Signature("f", (("s", STRING),), INT)
        assert _decompose_for(sig, [Example(("a",), 1)], "s") is None


class TestAssembledCandidates:
    def test_foreach_square_program_runs(self):
        dsl = foreach_dsl()
        sig = Signature("f", (("xs", list_of(INT)),), list_of(INT))
        examples = [Example(((3, 5, 4),), (9, 25, 16))]

        def synth(body_sig, body_examples, start_nt):
            current = Param("current", INT, "e")
            return Call(MUL, (current, current), "e")

        candidates = run_loop_strategies(dsl, sig, examples, synth)
        assert candidates
        program = candidates[0].program
        assert run_program(program, ("xs",), ((2, 3),)) == (4, 9)

    def test_for_sum_program_runs(self):
        dsl = for_dsl()
        sig = Signature("f", (("n", INT),), INT)
        examples = [
            Example((0,), 0),
            Example((1,), 1),
            Example((2,), 3),
        ]

        def synth(body_sig, body_examples, start_nt):
            # Body params are (i, acc): the bound param n is hidden.
            assert "n" not in body_sig.param_names
            i = Param("i", INT, "e")
            acc = Param("acc", INT, "e")
            return Call(ADD, (i, acc), "e")

        candidates = run_loop_strategies(dsl, sig, examples, synth)
        assert candidates
        program = candidates[0].program
        assert run_program(program, ("n",), (5,)) == 15

    def test_split_variant_builds_join_of_pieces(self):
        dsl = split_dsl()
        sig = Signature("f", (("s", STRING),), STRING)
        examples = [Example(("a,b",), "a!,b!")]

        def synth(body_sig, body_examples, start_nt):
            # piece + "!"
            concat = Function(
                "Concat", (STRING, STRING), STRING, lambda a, b: a + b
            )
            return Call(
                concat,
                (Param("current", STRING, "e"), Const("!", STRING, "e")),
                "e",
            )

        candidates = run_loop_strategies(dsl, sig, examples, synth)
        split_candidates = [c for c in candidates if c.variant == "split"]
        assert split_candidates
        program = split_candidates[0].program
        assert run_program(program, ("s",), ("x,y,z",)) == "x!,y!,z!"

    def test_failed_body_synthesis_skipped(self):
        dsl = foreach_dsl()
        sig = Signature("f", (("xs", list_of(INT)),), list_of(INT))
        examples = [Example(((1, 2),), (1, 4))]
        candidates = run_loop_strategies(
            dsl, sig, examples, lambda *a: None
        )
        assert candidates == []
