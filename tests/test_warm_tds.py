"""Cold-vs-warm differential tests for the persistent synthesis engine.

``TdsOptions.reuse_pool`` (default on) carries one component pool across
the whole TDS example sequence; off rebuilds it inside every DBS call
(the pre-engine behavior). Warm reuse is a performance feature only:
across all four domains a warm run must still solve (and generalize on)
what a cold run solves, and its traces must show the pool actually
being reused (``pool.extend`` spans, ``pool.entries_reused`` counters).
"""

import pytest

from repro.core.budget import Budget
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.tds import TdsOptions, TdsSession
from repro.core.types import BOOL, INT
from repro.suites import ALL_SUITES


def fast_budget():
    return Budget(max_seconds=20, max_expressions=250_000)


def cold_options():
    return TdsOptions(reuse_pool=False)


def by_name(suite, name):
    return next(b for b in suite if b.name == name)


@pytest.mark.parametrize(
    "suite_name, bench_name",
    [
        ("strings", "extract-domain"),
        ("tables", "transpose"),
        ("xml", "add-classes"),
    ],
)
def test_suite_benchmarks_warm_matches_cold(suite_name, bench_name):
    benchmark = by_name(ALL_SUITES[suite_name], bench_name)
    warm = benchmark.run(budget_factory=fast_budget)  # reuse_pool default
    cold = benchmark.run(budget_factory=fast_budget, options=cold_options())
    assert warm.success, f"{bench_name} failed warm"
    assert cold.success, f"{bench_name} failed cold"
    assert benchmark.check_holdout(warm), f"{bench_name} overfitted warm"
    assert benchmark.check_holdout(cold), f"{bench_name} overfitted cold"


def test_pexfun_puzzle_warm_matches_cold():
    from repro.pex import PUZZLES, play

    puzzle = next(p for p in PUZZLES if p.name == "max-of-two")
    budget = lambda: Budget(max_seconds=8, max_expressions=80_000)
    warm = play(puzzle, budget_factory=budget)
    cold = play(puzzle, budget_factory=budget, options=cold_options())
    assert warm.solved and cold.solved


# -- the warm engine's observability, end to end -----------------------


def _staircase_session(options=None):
    """A small conditional-arithmetic task whose later iterations must
    re-synthesize, so a warm session demonstrably extends its pool."""
    b = DslBuilder("arith", start="P")
    b.nt("P", INT).nt("e", INT).nt("b", BOOL)
    b.conditional("P", guard_nt="b", branch_nt="e")
    b.fn("e", "Neg", ["e"], lambda v: -v)
    b.fn("e", "Add", ["e", "e"], lambda a, c: a + c)
    b.fn("b", "Lt", ["e", "e"], lambda a, c: a < c)
    b.param("e")
    b.constant("e")
    b.constants_from(lambda examples: {"e": [0, 1]})
    session = TdsSession(
        Signature("f", (("x", INT),), INT),
        b.build(),
        budget_factory=lambda: Budget(
            max_seconds=15.0, max_expressions=40_000
        ),
        options=options,
    )
    examples = [
        Example((3,), 6),
        Example((7,), 14),
        Example((-4,), 4),
        Example((-9,), 9),
        Example((5,), 10),
        Example((-2,), 2),
    ]
    return session, examples


@pytest.mark.trace_smoke
def test_warm_run_traces_pool_reuse(tmp_path):
    from repro.obs import JsonlTracer, report_from_file, tracing

    path = str(tmp_path / "warm.jsonl")
    tracer = JsonlTracer(path)
    session, examples = _staircase_session()
    with tracing(tracer):
        for example in examples:
            session.add_example(example)
        result = session.finalize()
    tracer.flush()
    assert result.success

    # The live engine counted its reuse...
    assert session._engine is not None
    totals = session._engine.reuse_totals
    assert totals["reused"] > 0

    # ...and the same numbers reached the trace: pool.extend spans carry
    # the per-run report, and the metrics events carry the counters.
    report = report_from_file(path)
    pool_rows = [row for row in report.phases if row.phase == "pool"]
    assert pool_rows, "no pool.extend spans in the trace"
    assert report.counters.get("pool.entries_reused", 0) == totals["reused"]


def test_cold_run_has_no_pool_reuse(tmp_path):
    from repro.obs import JsonlTracer, report_from_file, tracing

    path = str(tmp_path / "cold.jsonl")
    tracer = JsonlTracer(path)
    session, examples = _staircase_session(options=cold_options())
    with tracing(tracer):
        for example in examples:
            session.add_example(example)
        result = session.finalize()
    tracer.flush()
    assert result.success
    assert session._engine is None
    report = report_from_file(path)
    assert not any(row.phase == "pool" for row in report.phases)
    assert report.counters.get("pool.entries_reused", 0) == 0


def test_warm_and_cold_agree_on_the_staircase():
    warm_session, examples = _staircase_session()
    cold_session, _ = _staircase_session(options=cold_options())
    for example in examples:
        warm_session.add_example(example)
        cold_session.add_example(example)
    warm = warm_session.finalize()
    cold = cold_session.finalize()
    assert warm.success and cold.success
    # Same semantics on every example, program syntax may differ.
    for example in examples:
        assert warm_session._satisfies(warm.program, example)
        assert cold_session._satisfies(cold.program, example)
