"""Integration tests: benchmark suites end-to-end through LaSy + TDS.

A representative fast benchmark per domain runs in the default test
pass; the complete suites run under ``--runslow`` (they are also what
the benchmark harness exercises).
"""

import pytest

from repro.core.budget import Budget
from repro.suites import (
    ALL_SUITES,
    STRING_BENCHMARKS,
    TABLE_BENCHMARKS,
    XML_BENCHMARKS,
)


def fast_budget():
    return Budget(max_seconds=20, max_expressions=250_000)


def hard_budget():
    return Budget(max_seconds=60, max_expressions=700_000)


def by_name(suite, name):
    return next(b for b in suite if b.name == name)


class TestSuiteShape:
    def test_counts_match_paper(self):
        assert len(STRING_BENCHMARKS) == 15  # §6.1.1
        assert len(TABLE_BENCHMARKS) == 8  # §6.1.2
        assert len(XML_BENCHMARKS) == 10  # §6.1.3

    def test_wordwrap_has_long_sequence(self):
        wordwrap = by_name(STRING_BENCHMARKS, "word-wrap")
        assert wordwrap.n_examples() >= 9

    def test_sources_parse(self):
        from repro.lasy.parser import parse_lasy

        for suite in ALL_SUITES.values():
            for benchmark in suite:
                parse_lasy(benchmark.source)

    def test_every_benchmark_has_holdout(self):
        for suite in ALL_SUITES.values():
            for benchmark in suite:
                assert benchmark.holdout, benchmark.name


@pytest.mark.parametrize(
    "suite_name, bench_name",
    [
        ("strings", "extract-domain"),
        ("strings", "parenthesize"),
        ("tables", "transpose"),
        ("tables", "fill-down-keys"),
        ("xml", "add-classes"),
        ("xml", "title-from-text"),
    ],
)
def test_fast_benchmarks_solve_and_generalize(suite_name, bench_name):
    benchmark = by_name(ALL_SUITES[suite_name], bench_name)
    result = benchmark.run(budget_factory=fast_budget)
    assert result.success, f"{bench_name} did not synthesize"
    assert benchmark.check_holdout(result), f"{bench_name} overfitted"


@pytest.mark.slow
@pytest.mark.parametrize(
    "benchmark", STRING_BENCHMARKS, ids=lambda b: b.name
)
def test_string_suite(benchmark):
    result = benchmark.run(
        budget_factory=hard_budget if benchmark.hard else fast_budget
    )
    assert result.success, f"{benchmark.name} did not synthesize"
    assert benchmark.check_holdout(result), f"{benchmark.name} overfitted"


@pytest.mark.slow
@pytest.mark.parametrize(
    "benchmark", TABLE_BENCHMARKS, ids=lambda b: b.name
)
def test_table_suite(benchmark):
    result = benchmark.run(
        budget_factory=hard_budget if benchmark.hard else fast_budget
    )
    assert result.success
    assert benchmark.check_holdout(result)


@pytest.mark.slow
@pytest.mark.parametrize(
    "benchmark", XML_BENCHMARKS, ids=lambda b: b.name
)
def test_xml_suite(benchmark):
    result = benchmark.run(
        budget_factory=hard_budget if benchmark.hard else fast_budget
    )
    assert result.success
    assert benchmark.check_holdout(result)
