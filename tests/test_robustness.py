"""Fault-tolerant execution layer: deterministic fault injection,
worker-crash recovery, poison-task quarantine, per-task timeouts, the
checkpoint journal, and the SIGKILL + ``--resume`` end-to-end."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exec import (
    FaultPlan,
    Journal,
    ParallelOutcome,
    RetryPolicy,
    SimulatedCrash,
    TaskFailure,
    checkpointed_map,
    parallel_map,
)
from repro.obs import JsonlTracer, load_events, tracing
from repro.obs.report import build_report

FAST_RETRY = RetryPolicy(base_delay=0.01, max_delay=0.05)


def _double(x):
    return x * 2


# -- fault plan parsing -----------------------------------------------


class TestFaultPlan:
    def test_modulo_target_first_attempt_only(self):
        plan = FaultPlan.parse("crash:%4")
        assert [f.kind for f in plan.matching(0, 0)] == ["crash"]
        assert plan.matching(4, 0) and plan.matching(8, 0)
        assert not plan.matching(1, 0)
        assert not plan.matching(0, 1)  # retry attempt is clean

    def test_every_attempt_and_literal_index(self):
        plan = FaultPlan.parse("crash:1@*")
        assert plan.matching(1, 0) and plan.matching(1, 3)
        assert not plan.matching(2, 0)

    def test_hang_with_seconds_and_multiple_clauses(self):
        plan = FaultPlan.parse("hang:2:30; slow:*:0.5@1")
        (hang,) = plan.matching(2, 0)
        assert hang.kind == "hang" and hang.seconds == 30.0
        (slow,) = plan.matching(7, 1)
        assert slow.kind == "slow" and slow.seconds == 0.5

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env({"REPRO_FAULTS": "crash:%2"})
        assert plan is not None and plan.spec == "crash:%2"

    def test_serial_inject_raises_simulated_crash(self):
        plan = FaultPlan.parse("crash:0")
        with pytest.raises(SimulatedCrash):
            plan.inject(0, 0, process_level=False)
        plan.inject(0, 1, process_level=False)  # retry: clean

    def test_malformed_clauses_rejected(self):
        for bad in ("explode:%4", "crash", "crash:%0"):
            with pytest.raises(ValueError):
                FaultPlan.parse(bad)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0)
        assert policy.delay(0, 1) == pytest.approx(0.1)
        assert policy.delay(0, 2) == pytest.approx(0.2)
        assert policy.delay(0, 9) == pytest.approx(0.4)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay(3, 1) == policy.delay(3, 1)
        assert policy.delay(3, 1) != policy.delay(4, 1)


# -- crash recovery / quarantine / timeouts ---------------------------


class TestCrashRecovery:
    def test_one_in_four_crashes_recovered_jobs_4(self, tmp_path):
        """The acceptance scenario: 1-in-4 worker crashes with
        ``--jobs 4`` completes with correct results, and the
        ``exec.retries`` counter is visible in the trace report."""
        trace = tmp_path / "crash.jsonl"
        plan = FaultPlan.parse("crash:%4")
        with tracing(JsonlTracer(str(trace))):
            outcome = parallel_map(
                _double,
                list(range(8)),
                jobs=4,
                faults=plan,
                retry=FAST_RETRY,
            )
        assert outcome.results == [x * 2 for x in range(8)]
        assert outcome.failures == []
        report = build_report(load_events(str(trace)))
        assert report.counters.get("exec.retries", 0) >= 2
        assert report.counters.get("exec.worker_crashes", 0) >= 2
        assert report.counters.get("exec.quarantined", 0) == 0

    def test_poison_task_quarantined(self, tmp_path):
        trace = tmp_path / "poison.jsonl"
        plan = FaultPlan.parse("crash:1@*")
        with tracing(JsonlTracer(str(trace))):
            outcome = parallel_map(
                _double,
                [0, 1, 2],
                jobs=2,
                faults=plan,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            )
        assert outcome.results[0] == 0 and outcome.results[2] == 4
        (failure,) = outcome.failures
        assert isinstance(outcome.results[1], TaskFailure)
        assert failure.kind == "crash" and failure.attempts == 2
        report = build_report(load_events(str(trace)))
        assert report.counters.get("exec.quarantined", 0) == 1

    def test_hung_worker_killed_and_task_retried(self):
        plan = FaultPlan.parse("hang:1:30")  # hangs attempt 0 only
        start = time.monotonic()
        outcome = parallel_map(
            _double,
            [0, 1, 2],
            jobs=2,
            faults=plan,
            task_timeout_s=0.5,
            retry=FAST_RETRY,
        )
        elapsed = time.monotonic() - start
        assert outcome.results == [0, 2, 4]
        assert elapsed < 10.0, "hang was not killed by the task timeout"

    def test_serial_path_honors_injected_crashes(self):
        plan = FaultPlan.parse("crash:0@*")
        outcome = parallel_map(
            _double,
            [0, 1],
            jobs=1,
            faults=plan,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
        )
        assert isinstance(outcome.results[0], TaskFailure)
        assert outcome.results[1] == 2

    def test_exceptions_still_propagate_under_faults(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_bad, [1, 2], jobs=2, retry=FAST_RETRY)


def _bad(item):
    return item // 0


# -- the checkpoint journal -------------------------------------------


class TestJournal:
    def test_append_and_load(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append({"key": "a", "result": 1})
            journal.append({"key": "b", "result": 2})
        assert [r["key"] for r in Journal.load(path)] == ["a", "b"]

    def test_torn_tail_dropped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"key": "a"}) + "\n")
            fh.write('{"key": "b", "resu')  # the line the kill tore
        records, valid = Journal.scan(path)
        assert [r["key"] for r in records] == ["a"]
        assert valid == len(json.dumps({"key": "a"})) + 1

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"key": "a"}) + "\n")
        with pytest.raises(ValueError):
            Journal.load(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal.load(str(tmp_path / "absent.jsonl")) == []


class TestCheckpointedMap:
    def test_resume_skips_done_tasks(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        items = list(range(5))
        keys = [f"t/{i}" for i in items]
        first = checkpointed_map(_double, items, keys, path, jobs=1)
        assert first.results == [0, 2, 4, 6, 8]

        calls = []

        def spy(x):
            calls.append(x)
            return x * 2

        resumed = checkpointed_map(
            spy, items, keys, path, resume=True, jobs=1
        )
        assert resumed.results == first.results
        assert calls == []

    def test_resume_after_torn_tail_reruns_only_missing(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        items = list(range(5))
        keys = [f"t/{i}" for i in items]
        checkpointed_map(_double, items, keys, path, jobs=1)
        records = Journal.load(path)
        with open(path, "w") as fh:
            for record in records[:3]:
                fh.write(json.dumps(record) + "\n")
            fh.write('{"key": "t/3", "result"')  # torn

        calls = []

        def spy(x):
            calls.append(x)
            return x * 2

        resumed = checkpointed_map(
            spy, items, keys, path, resume=True, jobs=1
        )
        assert resumed.results == [0, 2, 4, 6, 8]
        assert calls == [3, 4]
        # The journal healed: fully parseable, all five keys.
        assert [r["key"] for r in Journal.load(path)] == keys

    def test_failures_not_journaled(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        plan = FaultPlan.parse("crash:0@*")
        outcome = checkpointed_map(
            _double,
            [0, 1],
            ["t/0", "t/1"],
            path,
            jobs=1,
            faults=plan,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
        )
        assert isinstance(outcome.results[0], TaskFailure)
        assert [r["key"] for r in Journal.load(path)] == ["t/1"]
        # Resume retries the quarantined task (faults off this time).
        resumed = checkpointed_map(
            _double, [0, 1], ["t/0", "t/1"], path, resume=True, jobs=1,
            faults=FaultPlan.parse("slow:*:0"),
        )
        assert resumed.results == [0, 2]

    def test_duplicate_keys_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            checkpointed_map(
                _double, [1, 2], ["k", "k"], str(tmp_path / "j.jsonl")
            )


# -- SIGKILL + resume end-to-end --------------------------------------

DRIVER = """
import json, sys, time
from repro.exec import checkpointed_map
from repro.obs import metrics as obs_metrics

def task(x):
    time.sleep(0.2)
    obs_metrics.GLOBAL.counter("suite.work").inc(x)
    return {"x": x, "y": x * x}

journal, out_path, mode = sys.argv[1], sys.argv[2], sys.argv[3]
items = list(range(6))
keys = [f"suite-0/task-{i}" for i in items]
outcome = checkpointed_map(
    task, items, keys, journal, resume=(mode == "resume"), jobs=1
)
payload = {
    "results": outcome.results,
    "metrics": {"suite.work": obs_metrics.GLOBAL.value("suite.work")},
}
with open(out_path, "w") as fh:
    json.dump(payload, fh, sort_keys=True, indent=0)
"""


class TestKillAndResume:
    @pytest.mark.timeout(120)
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """The acceptance scenario: SIGKILL a running suite, restart it
        with resume, and the merged results/metrics are byte-identical
        to an uninterrupted run."""
        driver = tmp_path / "driver.py"
        driver.write_text(DRIVER)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)

        def run(journal, out, mode):
            return subprocess.Popen(
                [sys.executable, str(driver), journal, out, mode],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )

        # Uninterrupted reference run.
        ref_out = str(tmp_path / "ref.json")
        proc = run(str(tmp_path / "ref.jsonl"), ref_out, "fresh")
        assert proc.wait(timeout=60) == 0

        # Interrupted run: SIGKILL once at least two tasks are durable.
        journal = str(tmp_path / "killed.jsonl")
        out = str(tmp_path / "killed.json")
        proc = run(journal, out, "fresh")
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if (
                os.path.exists(journal)
                and sum(1 for _ in open(journal)) >= 2
            ):
                break
            time.sleep(0.02)
        else:
            proc.kill()
            pytest.fail("journal never reached 2 records")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert not os.path.exists(out), "killed run must not have finished"
        done_before = len(Journal.load(journal))
        assert done_before >= 2

        # Resume from the journal.
        proc = run(journal, out, "resume")
        assert proc.wait(timeout=60) == 0

        with open(ref_out, "rb") as fh:
            reference = fh.read()
        with open(out, "rb") as fh:
            resumed = fh.read()
        assert resumed == reference
        # And the journal holds each task exactly once.
        keys = [r["key"] for r in Journal.load(journal)]
        assert sorted(keys) == sorted(set(keys))
        assert len(keys) == 6


# -- experiment-level integration -------------------------------------


class TestRunSuiteCheckpoint:
    ADD1 = """
    language pexfun;
    function int Add1(int x);
    require Add1(1) == 2;
    require Add1(4) == 5;
    """
    IDENT = """
    language pexfun;
    function int Ident(int x);
    require Ident(3) == 3;
    require Ident(9) == 9;
    """

    def test_run_suite_checkpoints_and_resumes(self, tmp_path):
        from repro.experiments.common import ExperimentConfig, run_suite
        from repro.suites import Benchmark

        benchmarks = [
            Benchmark(name="rob-add1", source=self.ADD1, domain="pexfun"),
            Benchmark(name="rob-ident", source=self.IDENT, domain="pexfun"),
        ]
        journal = str(tmp_path / "suite.jsonl")
        config = ExperimentConfig(
            budget_seconds=8.0,
            budget_expressions=80_000,
            checkpoint_path=journal,
        )
        first = run_suite(benchmarks, config)
        assert len(first) == len(benchmarks)
        recorded = Journal.load(journal)
        assert len(recorded) == len(benchmarks)
        assert all(r["key"].startswith("suite-0/") for r in recorded)

        resume_config = ExperimentConfig(
            budget_seconds=8.0,
            budget_expressions=80_000,
            checkpoint_path=journal,
            resume=True,
        )
        again = run_suite(benchmarks, resume_config)
        assert [o.name for o in again] == [o.name for o in first]
        assert [o.success for o in again] == [o.success for o in first]
        assert [o.elapsed for o in again] == [o.elapsed for o in first]
