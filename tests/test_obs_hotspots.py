"""Tests for the hotspot attribution layer: per-production /
per-strategy / per-example cost accounting, the sampling profiler,
flamegraph export, trace diffing, and progress heartbeats.

The synthetic traces here use fixed ``ts``/``dur`` values so the
--hotspots / --diff / --flame JSON output is byte-stable and golden
tested (tests/data/golden_*.json)."""

import io
import json
import os
import time

import pytest

from repro.cli import main
from repro.obs import (
    JsonlTracer,
    ProgressEmitter,
    Registry,
    SamplingProfiler,
    TtyStatusLine,
    build_hotspots,
    build_report,
    diff_reports,
    flame_lines,
    get_progress,
    hotspots_to_json,
    render_diff,
    render_hotspots,
    set_progress,
    tracing,
)
from repro.obs.profile import format_frames

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


# ---------------------------------------------------------------------
# Synthetic traces (fixed timings: deterministic reports)


def _span(name, id, parent, ts, dur, **attrs):
    return {
        "kind": "span",
        "name": name,
        "id": id,
        "parent": parent,
        "ts": ts,
        "dur": dur,
        "attrs": attrs,
    }


def _event(name, parent, ts, **attrs):
    return {"kind": "event", "name": name, "parent": parent, "ts": ts, "attrs": attrs}


def _hist(total, count, labels=None):
    snap = {
        "type": "histogram",
        "count": count,
        "total": total,
        "min": 0.0,
        "max": total,
    }
    if labels:
        snap["labels"] = {
            key: {"count": c, "total": t, "min": 0.0, "max": t}
            for key, (c, t) in labels.items()
        }
    return snap


def _counter(value, labels=None):
    snap = {"type": "counter", "value": value}
    if labels:
        snap["labels"] = labels
    return snap


def synthetic_trace():
    """One DBS run with two productions, three strategies, two
    examples, and profiler samples from the driver and one worker."""
    metrics = {
        "dbs.expressions": _counter(150),
        "prof.production.sig_rejected": _counter(
            55, {"production=s<-Concat": 45, "production=n<-Add": 10}
        ),
        "prof.strategy.seconds": _hist(
            0.75,
            3,
            {"strategy=loops": (2, 0.5), "strategy=composition": (1, 0.25)},
        ),
        "prof.strategy.runs": _counter(
            3, {"strategy=loops": 2, "strategy=composition": 1}
        ),
        "prof.strategy.solved": _counter(1, {"strategy=composition": 1}),
        "prof.example.seconds": _hist(
            0.15, 9, {"index=0": (5, 0.1), "index=1": (4, 0.05)}
        ),
        "prof.example.evals": _counter(9, {"index=0": 5, "index=1": 4}),
        "prof.example.rejections": _counter(2, {"index=1": 2}),
    }
    return [
        _span(
            "dbs.enum.batched",
            2,
            1,
            0.1,
            1.0,
            production="s<-Concat",
            offered=100,
            added=40,
        ),
        _span(
            "dbs.enum.batched",
            3,
            1,
            1.1,
            0.5,
            production="n<-Add",
            offered=50,
            added=10,
        ),
        _span("dbs.test", 4, 1, 1.6, 0.2),
        _event("dbs.metrics", 1, 2.0, nested=False, metrics=metrics),
        _event(
            "profile.samples",
            1,
            2.0,
            count=10,
            interval_s=0.01,
            elapsed_s=0.1,
            samples=[
                [
                    ["dbs", "dbs.enum.batched"],
                    ["repro.core.compile:run", "repro.core.values:freeze"],
                    6,
                ],
                [["dbs"], ["repro.core.compile:run"], 4],
                # Driver parked on the worker pipes (jobs>1): reported
                # as "idle", never as a hotspot function row.
                [["dbs"], ["repro.exec.parallel:map", "selectors:select"], 5],
            ],
        ),
        _event(
            "profile.samples",
            1,
            2.0,
            count=3,
            interval_s=0.01,
            worker="w1",
            samples=[[["dbs"], ["repro.core.values:freeze"], 3]],
        ),
        _span("dbs", 1, None, 0.0, 2.0),
    ]


def synthetic_trace_new():
    """The same run after a hypothetical change: enum got slower on
    one production, the budget shifted (the --diff fixture)."""
    events = synthetic_trace()
    out = []
    for record in events:
        record = dict(record)
        record["attrs"] = dict(record["attrs"])
        if record.get("id") == 2:
            record["dur"] = 1.4
            record["attrs"]["offered"] = 120
        if record.get("id") == 1:
            record["dur"] = 2.4
        out.append(record)
    return out


def write_trace(path, events):
    with open(path, "w", encoding="utf-8") as fh:
        for record in events:
            fh.write(json.dumps(record) + "\n")
    return str(path)


# ---------------------------------------------------------------------
# Hotspot report


class TestHotspots:
    def report(self):
        return build_report(synthetic_trace())

    def test_production_rows_fold_sig_rejections(self):
        report = self.report()
        rows = {r.production: r for r in report.productions}
        assert rows["s<-Concat"].offered == 100
        assert rows["s<-Concat"].added == 40
        assert rows["s<-Concat"].sig_rejected == 45
        assert rows["n<-Add"].sig_rejected == 10

    def test_sorting_time_vs_budget(self):
        report = self.report()
        by_time = build_hotspots(report, sort="time")
        assert [r.production for r in by_time.productions] == [
            "s<-Concat",
            "n<-Add",
        ]
        assert [r.strategy for r in by_time.strategies] == [
            "loops",
            "composition",
        ]
        by_budget = build_hotspots(report, sort="budget")
        assert by_budget.productions[0].offered == 100
        assert by_budget.strategies[0].runs == 2
        with pytest.raises(ValueError):
            build_hotspots(report, sort="calls")

    def test_examples_attributed(self):
        hs = build_hotspots(self.report())
        assert [(r.index, r.evals, r.rejections) for r in hs.examples] == [
            (0, 5, 0),
            (1, 4, 2),
        ]
        assert hs.examples[0].seconds == pytest.approx(0.1)

    def test_functions_merge_worker_samples(self):
        hs = build_hotspots(self.report())
        rows = {r.function: r for r in hs.functions}
        # freeze leafs 6 driver samples + 3 worker samples.
        assert rows["repro.core.values:freeze"].self_samples == 9
        # run appears in both driver stacks (6 + 4) but never as leaf
        # of the second.
        assert rows["repro.core.compile:run"].self_samples == 4
        assert rows["repro.core.compile:run"].total_samples == 10
        assert hs.sample_count == 13
        assert hs.sample_interval == pytest.approx(0.01)

    def test_idle_driver_waits_excluded_from_functions(self):
        hs = build_hotspots(self.report())
        rows = {r.function: r for r in hs.functions}
        # The selectors:select stack is wait time, not work: no function
        # row for the selector leaf or anything above it.
        assert "selectors:select" not in rows
        assert "repro.exec.parallel:map" not in rows
        assert hs.idle_samples == 5
        text = render_hotspots(hs)
        assert "idle (select/pipe wait): 5 samples excluded" in text
        assert hotspots_to_json(hs)["idle_samples"] == 5

    def test_render_includes_all_sections(self):
        text = render_hotspots(build_hotspots(self.report()))
        for needle in (
            "Productions:",
            "Strategies:",
            "Examples (tester attribution):",
            "Sampled functions",
            "s<-Concat",
            "loops",
        ):
            assert needle in text

    def test_render_empty_report(self):
        text = render_hotspots(build_hotspots(build_report([])))
        assert "no hotspot data" in text


class TestFlame:
    def test_sampled_stacks_with_worker_prefix(self):
        lines = flame_lines(synthetic_trace())
        assert (
            "dbs;dbs.enum.batched;repro.core.compile:run;"
            "repro.core.values:freeze 6" in lines
        )
        assert "dbs;repro.core.compile:run 4" in lines
        assert "worker:w1;dbs;repro.core.values:freeze 3" in lines
        # Pipe waits collapse to one flat frame instead of a selector
        # stack dominating the graph.
        assert "dbs;idle 5" in lines
        assert not any("selectors:select" in line for line in lines)
        assert lines == sorted(lines)

    def test_span_tree_fallback(self):
        events = [
            e for e in synthetic_trace() if e["name"] != "profile.samples"
        ]
        lines = flame_lines(events)
        # Self-time in ms: dbs = 2.0 - (1.0 + 0.5 + 0.2) = 0.3; the
        # two enum spans share a path and merge into one 1500ms frame.
        assert lines == [
            "dbs 300",
            "dbs;dbs.enum.batched 1500",
            "dbs;dbs.test 200",
        ]


class TestDiff:
    def test_totals_and_movers(self):
        old = build_report(synthetic_trace())
        new = build_report(synthetic_trace_new())
        diff = diff_reports(old, new)
        assert diff["totals"]["total_seconds"]["delta"] == pytest.approx(0.4)
        phases = {r["phase"]: r for r in diff["phases"]}
        assert phases["enum"]["delta"] == pytest.approx(0.4)
        # Largest mover first.
        assert diff["productions"][0]["production"] == "s<-Concat"
        assert diff["productions"][0]["delta"] == pytest.approx(0.4)
        exprs = {r["phase"]: r for r in diff["phase_expressions"]}
        assert exprs["enum"]["delta"] == pytest.approx(20.0)

    def test_render(self):
        diff = diff_reports(
            build_report(synthetic_trace()),
            build_report(synthetic_trace_new()),
        )
        text = render_diff(diff)
        assert "Trace diff (new - old)" in text
        assert "total_seconds" in text
        assert "+0.4" in text


# ---------------------------------------------------------------------
# Golden files: the --json schema is a stable interface


class TestGoldenJson:
    """Golden-file tests for the report-trace --json schemas. On an
    intentional schema change, regenerate with:

        PYTHONPATH=src python tests/data/regen_golden.py
    """

    def golden(self, name):
        with open(os.path.join(DATA_DIR, name), encoding="utf-8") as fh:
            return json.load(fh)

    def test_hotspots_json_schema(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "t.jsonl", synthetic_trace())
        assert main(["report-trace", trace, "--hotspots", "--json"]) == 0
        got = json.loads(capsys.readouterr().out)
        assert got == self.golden("golden_hotspots.json")

    def test_diff_json_schema(self, tmp_path, capsys):
        old = write_trace(tmp_path / "old.jsonl", synthetic_trace())
        new = write_trace(tmp_path / "new.jsonl", synthetic_trace_new())
        assert main(["report-trace", "--diff", old, new, "--json"]) == 0
        got = json.loads(capsys.readouterr().out)
        assert got == self.golden("golden_diff.json")

    def test_flame_output(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "t.jsonl", synthetic_trace())
        assert main(["report-trace", trace, "--flame"]) == 0
        got = capsys.readouterr().out.splitlines()
        assert got == self.golden("golden_flame.json")


# ---------------------------------------------------------------------
# CLI argument and error handling


class TestCliErrors:
    def test_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report-trace", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "empty trace file" in err

    def test_torn_only_trace(self, tmp_path, capsys):
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"kind": "span", "na')
        assert main(["report-trace", str(torn)]) == 2
        assert "empty trace file" in capsys.readouterr().err

    def test_mid_file_corruption(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            'garbage\n{"kind": "event", "name": "x", "ts": 0}\n'
        )
        assert main(["report-trace", str(bad)]) == 2
        assert "not JSON" in capsys.readouterr().err

    def test_diff_needs_two_files(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "t.jsonl", synthetic_trace())
        assert main(["report-trace", "--diff", trace]) == 2
        assert "two trace files" in capsys.readouterr().err

    def test_two_files_need_diff(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "t.jsonl", synthetic_trace())
        assert main(["report-trace", trace, trace]) == 2
        assert "--diff" in capsys.readouterr().err

    def test_profile_requires_trace(self, tmp_path, capsys):
        lasy = tmp_path / "x.lasy"
        lasy.write_text(
            "language pexfun;\nfunction int F(int x);\nrequire F(1) == 2;\n"
        )
        assert main(["--profile", "synth", str(lasy)]) == 2
        assert "--profile needs --trace" in capsys.readouterr().err


# ---------------------------------------------------------------------
# Sampling profiler (deterministic: synthetic frames, no threads)


class _FakeFrame:
    def __init__(self, module, name, back=None):
        self.f_code = type("code", (), {"co_name": name})()
        self.f_globals = {"__name__": module}
        self.f_back = back


def _stack(*frames):
    """Build a leaf frame from (module, name) pairs, root first."""
    top = None
    for module, name in frames:
        top = _FakeFrame(module, name, back=top)
    return top


class TestSamplingProfiler:
    def test_format_frames_root_first(self):
        leaf = _stack(("mod.a", "outer"), ("mod.b", "inner"))
        assert format_frames(leaf) == ("mod.a:outer", "mod.b:inner")
        assert format_frames(leaf, max_depth=1) == ("mod.b:inner",)
        assert format_frames(None) == ()

    def test_sample_once_aggregates_and_skips_own_thread(self):
        import threading

        profiler = SamplingProfiler(hz=100)
        leaf = _stack(("m", "f"), ("m", "g"))
        frames = {threading.get_ident(): leaf, 12345: leaf}
        assert profiler.sample_once(frames) == 1  # own thread skipped
        assert profiler.sample_once(frames) == 1
        ((key, count),) = profiler.samples().items()
        assert key == ((), ("m:f", "m:g"))
        assert count == 2
        payload = profiler.to_payload()
        assert payload["count"] == 2
        assert payload["interval_s"] == pytest.approx(0.01)
        assert payload["samples"] == [[[], ["m:f", "m:g"], 2]]

    def test_emit_writes_one_event(self):
        profiler = SamplingProfiler(hz=50)
        profiler.sample_once({999: _stack(("m", "f"))})
        buf = io.StringIO()
        tracer = JsonlTracer(buf)
        assert profiler.emit(tracer)
        record = json.loads(buf.getvalue())
        assert record["name"] == "profile.samples"
        assert record["attrs"]["samples"] == [[[], ["m:f"], 1]]

    def test_emit_noop_when_disabled_or_empty(self):
        profiler = SamplingProfiler()
        assert not profiler.emit()  # no samples, NullTracer
        profiler.sample_once({999: _stack(("m", "f"))})
        assert not profiler.emit()  # NullTracer still off

    def test_thread_lifecycle(self):
        # A real start/stop cycle over the live interpreter: the daemon
        # thread must record the main thread's stack and shut down
        # cleanly (idempotent stop).
        profiler = SamplingProfiler(hz=200)
        with profiler:
            deadline = time.monotonic() + 5.0
            while not profiler.samples() and time.monotonic() < deadline:
                time.sleep(0.005)
        profiler.stop()  # second stop is a no-op
        assert profiler.samples()
        assert profiler.elapsed_s > 0
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        started = SamplingProfiler().start()
        try:
            with pytest.raises(RuntimeError):
                started.start()
        finally:
            started.stop()


# ---------------------------------------------------------------------
# Progress heartbeats


class TestProgress:
    def test_tick_rate_limited_and_rate_computed(self):
        clock = {"t": 0.0}
        seen = []
        emitter = ProgressEmitter(
            interval_s=0.5, clock=lambda: clock["t"], listener=seen.append
        )
        assert emitter.due()
        first = emitter.tick(generation=1, pool_size=10, candidates=100)
        assert first["candidates"] == 100
        assert "cands_per_s" not in first  # no previous tick
        clock["t"] = 0.2
        assert not emitter.due()
        assert (
            emitter.tick(generation=1, pool_size=10, candidates=150) is None
        )
        clock["t"] = 1.0
        second = emitter.tick(
            generation=2, pool_size=20, candidates=300, deadline_s=4.5
        )
        assert second["cands_per_s"] == pytest.approx(200.0)
        assert second["deadline_s"] == 4.5
        assert seen == [first, second]
        assert emitter.emitted == 2

    def test_force_overrides_rate_limit(self):
        clock = {"t": 0.0}
        emitter = ProgressEmitter(interval_s=10.0, clock=lambda: clock["t"])
        emitter.tick(generation=1, pool_size=1, candidates=1)
        assert (
            emitter.tick(generation=1, pool_size=1, candidates=2) is None
        )
        forced = emitter.tick(
            generation=1, pool_size=1, candidates=2, force=True
        )
        assert forced is not None

    def test_tick_emits_trace_event(self):
        buf = io.StringIO()
        with tracing(JsonlTracer(buf)):
            emitter = ProgressEmitter(clock=lambda: 0.0)
            emitter.tick(generation=3, pool_size=7, candidates=42)
        record = json.loads(buf.getvalue())
        assert record["name"] == "progress"
        assert record["attrs"]["generation"] == 3
        assert record["attrs"]["pool"] == 7

    def test_global_install(self):
        emitter = ProgressEmitter()
        assert set_progress(emitter) is None
        try:
            assert get_progress() is emitter
        finally:
            assert set_progress(None) is emitter
        assert get_progress() is None

    def test_tty_status_line_rewrites_and_clears(self):
        buf = io.StringIO()
        status = TtyStatusLine(stream=buf)
        status({"generation": 1, "pool": 10, "candidates": 99,
                "cands_per_s": 50.0, "deadline_s": 2.0})
        out = buf.getvalue()
        assert out.startswith("\r")
        assert "gen 1" in out and "50/s" in out and "2.0s left" in out
        status({"generation": 2, "pool": 11, "candidates": 120})
        status.clear()
        assert buf.getvalue().endswith(" \r")
        status.clear()  # idempotent

    def test_heartbeats_recorded_during_synthesis(self):
        from repro.core.budget import Budget
        from repro.lasy.runner import synthesize

        source = """
        language pexfun;
        function int Add1(int x);
        require Add1(3) == 4;
        require Add1(10) == 11;
        """
        buf = io.StringIO()
        emitter = ProgressEmitter(interval_s=0.0)  # every guarded site
        previous = set_progress(emitter)
        try:
            with tracing(JsonlTracer(buf)):
                result = synthesize(
                    source,
                    budget_factory=lambda: Budget(
                        max_seconds=10, max_expressions=50_000
                    ),
                )
        finally:
            set_progress(previous)
        assert result.success
        beats = [
            json.loads(line)
            for line in buf.getvalue().splitlines()
            if '"progress"' in line
        ]
        beats = [b for b in beats if b["name"] == "progress"]
        assert beats
        payload = beats[0]["attrs"]
        assert {"phase", "generation", "pool", "candidates"} <= set(payload)


# ---------------------------------------------------------------------
# Shard merge: disjoint label sets from two workers


class TestShardLabelMerge:
    def test_histograms_with_disjoint_production_labels(self):
        parent = Registry(detailed=True)
        w1 = Registry(detailed=True)
        w1.histogram("prof.production.seconds").observe(
            0.5, production="s<-Concat"
        )
        w1.counter("prof.production.offered").inc(10, production="s<-Concat")
        w2 = Registry(detailed=True)
        w2.histogram("prof.production.seconds").observe(
            0.25, production="n<-Add"
        )
        w2.histogram("prof.production.seconds").observe(
            0.05, production="n<-Add"
        )
        w2.counter("prof.production.offered").inc(4, production="n<-Add")

        # Snapshots cross the process boundary as JSON (absorb path).
        parent.merge(json.loads(json.dumps(w1.snapshot())))
        parent.merge(json.loads(json.dumps(w2.snapshot())))

        h = parent.histogram("prof.production.seconds").snapshot()
        assert set(h["labels"]) == {
            "production=s<-Concat",
            "production=n<-Add",
        }
        assert h["labels"]["production=s<-Concat"]["count"] == 1
        assert h["labels"]["production=n<-Add"]["count"] == 2
        assert h["labels"]["production=n<-Add"]["total"] == pytest.approx(0.3)
        assert h["count"] == 3
        c = parent.counter("prof.production.offered").snapshot()
        assert c["labels"] == {
            "production=s<-Concat": 10,
            "production=n<-Add": 4,
        }
        assert parent.value("prof.production.offered") == 14

    def test_overlapping_labels_accumulate(self):
        parent = Registry(detailed=True)
        for _ in range(2):
            worker = Registry(detailed=True)
            worker.histogram("prof.example.seconds").observe(0.1, index=0)
            worker.counter("prof.example.evals").inc(5, index=0)
            parent.merge(json.loads(json.dumps(worker.snapshot())))
        h = parent.histogram("prof.example.seconds").snapshot()
        assert h["labels"]["index=0"]["count"] == 2
        assert h["labels"]["index=0"]["total"] == pytest.approx(0.2)

    def test_local_int_and_merged_str_label_values_collapse(self):
        # Local recording keys labels with the raw value (index=0 the
        # int); merged snapshots arrive stringified. The snapshot must
        # show one display key, not two.
        parent = Registry(detailed=True)
        parent.counter("prof.example.evals").inc(3, index=0)
        parent.histogram("prof.example.seconds").observe(0.1, index=0)
        worker = Registry(detailed=True)
        worker.counter("prof.example.evals").inc(2, index=0)
        worker.histogram("prof.example.seconds").observe(0.3, index=0)
        parent.merge(json.loads(json.dumps(worker.snapshot())))
        c = parent.counter("prof.example.evals").snapshot()
        assert c["labels"] == {"index=0": 5}
        h = parent.histogram("prof.example.seconds").snapshot()
        assert h["labels"] == {
            "index=0": {
                "count": 2,
                "total": pytest.approx(0.4),
                "min": 0.1,
                "max": 0.3,
            }
        }


# ---------------------------------------------------------------------
# Disabled-path overhead (satellite: NullTracer + accounting < 2%)


@pytest.mark.trace_smoke
class TestAccountingOverhead:
    """The accounting layer must be free when observability is off.

    Wall-clock A/B of full search runs is too noisy for CI, so this
    measures the two costs directly and compares them: the per-candidate
    cost of the seeded enumeration kernel (the bench_enum micro DSL) vs
    the incremental cost of the off-state guard the accounting added to
    the hot loop (``get_progress() is None`` + ``prog is not None``).
    The guard must stay under 2% of a candidate's cost."""

    def _kernel_seconds_per_candidate(self):
        from repro.core.budget import Budget
        from repro.core.dbs import DbsStats
        from repro.core.dsl import DslBuilder, Example, Signature
        from repro.core.engine import Enumerator, PoolStore
        from repro.core.types import INT, STRING

        b = DslBuilder("overhead-micro", start="s")
        b.nt("s", STRING).nt("n", INT)
        b.fn("s", "Concat", ["s", "s"], lambda a, c: a + c)
        b.fn("s", "Left", ["s", "n"], lambda v, n: v[:n])
        b.fn("n", "Add", ["n", "n"], lambda a, c: a + c)
        b.fn("n", "Len", ["s"], len)
        b.param("s")
        b.param("n")
        b.constants_from(lambda examples: {"s": ["-"], "n": [1]})
        dsl = b.build()
        examples = [
            Example(("alpha.beta", 3), "ALP"),
            Example(("x.y", 1), "X"),
        ]
        signature = Signature(
            "f", (("s", STRING), ("n", INT)), STRING
        )
        budget = Budget(max_seconds=600.0, max_expressions=20_000)
        pool = PoolStore(
            dsl,
            signature,
            examples,
            budget=budget,
            metrics=DbsStats().registry,
        )
        enumerator = Enumerator(pool, enum_mode="batched")
        enumerator.seed([])
        start = time.perf_counter()
        for _ in range(4):
            enumerator.advance()
        elapsed = time.perf_counter() - start
        assert budget.expressions > 1000
        return elapsed / budget.expressions

    def test_off_state_guard_under_two_percent(self):
        assert get_progress() is None  # the off state under test
        per_candidate = min(
            self._kernel_seconds_per_candidate() for _ in range(3)
        )

        n = 200_000
        r = range(n)
        start = time.perf_counter()
        for _ in r:
            pass
        base = time.perf_counter() - start
        prog = get_progress()
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in r:
                if prog is not None:  # pragma: no cover - off state
                    raise AssertionError
            best = min(best, time.perf_counter() - start)
        guard = max(best - base, 0.0) / n
        # Shared CI runners schedule noisily enough that the two
        # perf_counter deltas being subtracted can each wobble by more
        # than the guard itself; keep the tight bound for local runs
        # and allow 5x headroom where the environment is preemptible.
        tolerance = 0.10 if os.environ.get("CI") else 0.02
        assert guard < tolerance * per_candidate, (
            f"off-state guard {guard * 1e9:.0f}ns/candidate vs "
            f"kernel {per_candidate * 1e6:.2f}us/candidate"
        )

    def test_no_detailed_metrics_recorded_when_off(self):
        from repro.core.budget import Budget
        from repro.core.dbs import DbsOptions, dbs
        from repro.core.dsl import Example, Signature
        from repro.core.types import INT
        from repro.domains import get_domain

        dsl = get_domain("pexfun").dsl()
        signature = Signature("Add1", (("x", INT),), INT)
        examples = [Example((3,), 4), Example((10,), 11)]
        result = dbs(
            [],
            examples,
            [],
            dsl,
            signature,
            budget=Budget(max_seconds=10, max_expressions=50_000),
            options=DbsOptions(),
        )
        assert result.program is not None
        # No tracer installed -> detailed=False -> the prof.* labeled
        # families must never be touched (they cost a dict update per
        # production/strategy/example when on).
        prof = {
            name
            for name in result.stats.registry.snapshot()
            if name.startswith("prof.")
        }
        assert not prof, prof
