"""Tests for repro.core.values."""

from repro.core.values import (
    ERROR,
    ErrorValue,
    freeze,
    signature_key,
    structurally_equal,
    value_repr,
)


class TestErrorValue:
    def test_singleton(self):
        assert ErrorValue() is ERROR

    def test_equal_only_to_itself(self):
        assert ERROR == ERROR
        assert ERROR != 0
        assert ERROR != "error"

    def test_hashable(self):
        assert len({ERROR, ERROR}) == 1

    def test_repr(self):
        assert repr(ERROR) == "<error>"


class TestFreeze:
    def test_list_becomes_tuple(self):
        assert freeze([1, 2]) == (1, 2)

    def test_nested(self):
        assert freeze([[1], [2, 3]]) == ((1,), (2, 3))

    def test_dict_sorted_items(self):
        assert freeze({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_scalars_pass_through(self):
        assert freeze(5) == 5
        assert freeze("x") == "x"


class TestStructuralEquality:
    def test_scalars(self):
        assert structurally_equal(3, 3)
        assert not structurally_equal(3, 4)

    def test_bool_is_not_int(self):
        assert not structurally_equal(True, 1)
        assert not structurally_equal(0, False)

    def test_bool_vs_bool(self):
        assert structurally_equal(True, True)

    def test_list_vs_tuple(self):
        assert structurally_equal([1, 2], (1, 2))

    def test_nested_sequences(self):
        assert structurally_equal([[1], [2]], ((1,), (2,)))

    def test_str_vs_int(self):
        assert not structurally_equal("1", 1)

    def test_length_mismatch(self):
        assert not structurally_equal((1, 2), (1, 2, 3))


class TestSignatureKey:
    def test_key_is_hashable(self):
        hash(signature_key([1, "a", (2, 3)]))

    def test_bools_disambiguated(self):
        assert signature_key([True]) != signature_key([1])

    def test_error_participates(self):
        assert signature_key([ERROR]) != signature_key([None])

    def test_equal_vectors_equal_keys(self):
        assert signature_key([1, [2]]) == signature_key([1, (2,)])


class TestValueRepr:
    def test_bool(self):
        assert value_repr(True) == "true"
        assert value_repr(False) == "false"

    def test_string(self):
        assert value_repr("hi") == "'hi'"

    def test_tuple_renders_braces(self):
        assert value_repr((1, 2)) == "{1, 2}"

    def test_error(self):
        assert value_repr(ERROR) == "<error>"
