"""Tests for repro.exec: parallel_map, worker trace shards, and the
metrics merge-back (plus the trace_smoke shard-sum assertion)."""

import json
import os

import pytest

from repro.core import evaluator
from repro.core.budget import Budget
from repro.exec import ParallelOutcome, parallel_map
from repro.lasy.runner import synthesize
from repro.obs import JsonlTracer, load_events, tracing
from repro.obs.report import build_report

ADD_SRC = """
language pexfun;
function int Add{n}(int x);
require Add{n}(3) == {a};
require Add{n}(10) == {b};
"""


def _sources(k):
    return [
        ADD_SRC.format(n=n, a=3 + n, b=10 + n) for n in range(1, k + 1)
    ]


def _small_budget():
    return Budget(max_seconds=10.0, max_expressions=60_000)


def _synth_task(source):
    """Module-level so it pickles into workers."""
    result = synthesize(source, budget_factory=_small_budget)
    return result.success


def test_serial_when_jobs_one():
    outcome = parallel_map(_synth_task, _sources(2), jobs=1)
    assert isinstance(outcome, ParallelOutcome)
    assert outcome.results == [True, True]
    assert outcome.jobs_used == 1
    assert outcome.task_metrics == []


def test_serial_when_single_item():
    outcome = parallel_map(_synth_task, _sources(1), jobs=4)
    assert outcome.results == [True]
    assert outcome.jobs_used == 1


def test_parallel_results_ordered_and_metrics_merged():
    before_total = evaluator.METRICS.value("eval.run_program")
    before_local = evaluator.METRICS.local_value("eval.run_program")
    outcome = parallel_map(_synth_task, _sources(3), jobs=2)
    assert outcome.results == [True, True, True]
    assert outcome.jobs_used == 2
    assert len(outcome.task_metrics) == 3
    shipped = sum(
        snap["evaluator"].get("eval.run_program", {}).get("value", 0)
        for snap in outcome.task_metrics
    )
    assert shipped > 0
    after_total = evaluator.METRICS.value("eval.run_program")
    after_local = evaluator.METRICS.local_value("eval.run_program")
    # Worker runs land in the total but not in local attribution.
    assert after_total - before_total == shipped
    assert after_local == before_local


def test_unpicklable_fn_falls_back_to_serial():
    outcome = parallel_map(
        lambda s: _synth_task(s), _sources(2), jobs=2
    )
    assert outcome.results == [True, True]
    assert outcome.jobs_used == 1


def test_task_exceptions_propagate():
    with pytest.raises(ZeroDivisionError):
        parallel_map(_boom, [1, 2], jobs=2)


def _boom(item):
    return item // 0


class TestAbsorbShard:
    def test_ids_remap_and_reparent(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        child = JsonlTracer(str(shard))
        with child.span("dbs"):
            with child.span("dbs.test", batch=3):
                pass
            child.event("dbs.metrics", metrics={})
        child.close()

        merged = tmp_path / "merged.jsonl"
        parent = JsonlTracer(str(merged))
        with parent.span("experiment"):
            absorbed = parent.absorb_shard(str(shard), worker="w1")
        parent.close()
        assert absorbed == 3

        events = load_events(str(merged))
        by_name = {e["name"]: e for e in events}
        exp = by_name["experiment"]
        dbs = by_name["dbs"]
        test = by_name["dbs.test"]
        evt = by_name["dbs.metrics"]
        # Shard ids shifted past the parent's id space, no collisions.
        ids = [e["id"] for e in events if "id" in e]
        assert len(ids) == len(set(ids))
        # The shard's root span now hangs off the open parent span.
        assert dbs["parent"] == exp["id"]
        assert test["parent"] == dbs["id"]
        assert evt["parent"] == dbs["id"]
        assert test["attrs"]["worker"] == "w1"
        assert test["attrs"]["batch"] == 3

    def test_absorb_from_lines(self, tmp_path):
        import io

        buf = io.StringIO()
        child = JsonlTracer(buf)
        with child.span("dbs.loops.concurrent"):
            pass
        merged = tmp_path / "merged.jsonl"
        parent = JsonlTracer(str(merged))
        assert parent.absorb_shard(buf.getvalue().splitlines()) == 1
        parent.close()
        (event,) = load_events(str(merged))
        assert event["name"] == "dbs.loops.concurrent"


@pytest.mark.trace_smoke
class TestParallelTraceSmoke:
    """--jobs N observability acceptance: the merged trace/metrics
    totals must equal the sum of the worker shards."""

    def test_merged_totals_equal_shard_sums(self, tmp_path):
        trace = tmp_path / "par.jsonl"
        before_total = evaluator.METRICS.value("eval.run_program")
        with tracing(JsonlTracer(str(trace))):
            outcome = parallel_map(
                _synth_task,
                _sources(3),
                jobs=2,
                trace_base=str(trace),
                keep_shards=True,
            )
        assert outcome.results == [True, True, True]
        assert outcome.shards, "worker shards should have been kept"

        shard_events = []
        for shard in outcome.shards:
            shard_events.append(load_events(shard))

        merged = load_events(str(trace))
        absorbed = [
            e for e in merged if "worker" in e.get("attrs", {})
        ]
        # Every shard record appears exactly once in the merged stream.
        assert len(absorbed) == sum(len(ev) for ev in shard_events)

        # Span counts per name agree between merged-absorbed and shards.
        def counts(events):
            table = {}
            for e in events:
                if e["kind"] == "span":
                    table[e["name"]] = table.get(e["name"], 0) + 1
            return table

        shard_counts = {}
        for ev in shard_events:
            for name, n in counts(ev).items():
                shard_counts[name] = shard_counts.get(name, 0) + n
        assert counts(absorbed) == shard_counts

        # Report totals over the merged stream equal the sum of the
        # per-shard report totals.
        merged_report = build_report(merged)
        shard_reports = [build_report(ev) for ev in shard_events]
        assert merged_report.dbs_runs == sum(
            r.dbs_runs for r in shard_reports
        )
        assert merged_report.total_expressions == sum(
            r.total_expressions for r in shard_reports
        )

        # Metrics: the parent's merged evaluator total equals the sum
        # shipped back from the workers.
        shipped = sum(
            snap["evaluator"].get("eval.run_program", {}).get("value", 0)
            for snap in outcome.task_metrics
        )
        assert shipped > 0
        assert (
            evaluator.METRICS.value("eval.run_program") - before_total
            == shipped
        )

        # Shard files are valid JSONL (the worker flushed after tasks).
        for shard in outcome.shards:
            with open(shard, encoding="utf-8") as fh:
                for line in fh:
                    json.loads(line)
            os.remove(shard)
