"""Deadline/cancellation layer: hard wall-clock truncation with a
structured SynthesisTimeout, warm resume after truncation, and the
truncated-then-resumed == unbudgeted differential across all four
domains."""

import time

import pytest

from repro.core.budget import (
    Budget,
    BudgetExhausted,
    Cancelled,
    CancelToken,
    Deadline,
    DeadlineExceeded,
)
from repro.core.dbs import DbsOptions, SynthesisTimeout, dbs
from repro.core.dsl import Example, Signature
from repro.core.tds import TdsOptions, TdsSession
from repro.core.types import INT
from repro.domains.registry import get_domain
from repro.lasy import resume_lasy, synthesize
from repro.suites import ALL_SUITES


# -- units: CancelToken / Deadline / Budget ---------------------------


class TestCancelToken:
    def test_cancel_sets_reason_and_flag(self):
        token = CancelToken()
        assert not token.cancelled
        assert not token.is_set()
        token.cancel("shutdown requested")
        assert token.cancelled
        assert token.is_set()
        assert token.reason == "shutdown requested"

    def test_check_raises_cancelled(self):
        token = CancelToken()
        token.check()  # not cancelled: no-op
        token.cancel("stop")
        with pytest.raises(Cancelled):
            token.check()

    def test_set_compat_alias(self):
        # loops.py drives tokens through the threading.Event protocol.
        token = CancelToken()
        token.set()
        assert token.is_set()


class TestDeadline:
    def test_after_expires(self):
        deadline = Deadline.after(0.01)
        assert not deadline.expired()
        assert deadline.remaining() > 0
        time.sleep(0.02)
        assert deadline.expired()
        assert deadline.why_expired() == "deadline"
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_unbounded_with_token(self):
        token = CancelToken()
        deadline = Deadline.after(None, token=token)
        assert not deadline.expired()
        assert deadline.remaining() is None
        token.cancel("user abort")
        assert deadline.expired()
        assert "user abort" in deadline.why_expired()
        with pytest.raises(Cancelled):
            deadline.check()

    def test_earliest_merges(self):
        a = Deadline.after(100.0)
        b = Deadline.after(0.01)
        merged = Deadline.earliest(a, b)
        assert merged.remaining() <= 0.01 + 0.001
        assert Deadline.earliest(a, None) is a
        assert Deadline.earliest(None, b) is b

    def test_budget_add_deadline_trips_hard(self):
        budget = Budget(max_seconds=100.0, max_expressions=10**9)
        budget.add_deadline(Deadline.after(0.01))
        budget.check()  # within the wall
        time.sleep(0.02)
        with pytest.raises(DeadlineExceeded):
            budget.check()
        assert budget.exhausted_reason == "deadline"
        assert budget.hard_expired()

    def test_budget_soft_reason_recorded(self):
        budget = Budget(max_seconds=100.0, max_expressions=2)
        budget.expressions = 5
        with pytest.raises(BudgetExhausted):
            budget.check()
        assert budget.exhausted_reason == "expressions"
        assert not budget.hard_expired()


# -- the DbsOptions.timeout_s acceptance pin --------------------------


def _adversarial_search(timeout_s, budget=None, options=None):
    """Unsatisfiable examples over the full pexfun grammar: the search
    can only end when something truncates it."""
    dsl = get_domain("pexfun").dsl()
    sig = Signature("f", (("x", INT),), INT)
    examples = [Example((1,), 2), Example((1,), 3)]
    budget = budget or Budget(max_seconds=300.0, max_expressions=10**9)
    options = options or DbsOptions(timeout_s=timeout_s)
    return dbs([], examples, [], dsl, sig, budget=budget, options=options)


class TestDbsTimeout:
    def test_hard_deadline_truncates_within_2x_budget(self):
        start = time.monotonic()
        result = _adversarial_search(timeout_s=0.05)
        elapsed = time.monotonic() - start
        assert result.timed_out
        assert isinstance(result.timeout, SynthesisTimeout)
        assert result.timeout.reason == "deadline"
        assert result.timeout.budget_seconds == 0.05
        assert elapsed <= 0.10, f"deadline overshoot: {elapsed:.3f}s"

    def test_timeout_preserves_partial_pool(self):
        result = _adversarial_search(timeout_s=0.05)
        assert result.timeout.pool_entries > 0
        assert result.timeout.expressions > 0

    def test_timeout_counter_recorded(self):
        result = _adversarial_search(timeout_s=0.05)
        registry = result.stats.registry
        assert registry.value("dbs.timeout") == 1

    def test_soft_budget_reason_survives(self):
        budget = Budget(max_seconds=300.0, max_expressions=500)
        result = _adversarial_search(
            timeout_s=None, budget=budget, options=DbsOptions()
        )
        assert result.timed_out
        assert result.timeout.reason == "expressions"

    def test_pre_cancelled_token_truncates_immediately(self):
        token = CancelToken()
        token.cancel("external stop")
        budget = Budget(max_seconds=300.0, max_expressions=10**9)
        budget.add_deadline(Deadline.after(None, token=token))
        start = time.monotonic()
        result = _adversarial_search(
            timeout_s=None, budget=budget, options=DbsOptions()
        )
        assert time.monotonic() - start < 1.0
        assert result.timed_out
        assert "external stop" in result.timeout.reason


# -- TDS-level wall + warm resume -------------------------------------


class TestTdsTimeout:
    def _unsat_session(self, timeout_s):
        dsl = get_domain("pexfun").dsl()
        sig = Signature("f", (("x", INT),), INT)
        return TdsSession(
            sig,
            dsl,
            budget_factory=lambda: Budget(
                max_seconds=300.0, max_expressions=10**9
            ),
            options=TdsOptions(timeout_s=timeout_s),
        )

    def test_sequence_wall_truncates_steps(self):
        session = self._unsat_session(timeout_s=0.05)
        session.add_example(Example((1,), 2))
        step = session.add_example(Example((1,), 3))
        assert step.action == "timeout"
        assert step.timeout_reason == "deadline"
        result = session.finalize()
        assert not result.success

    def test_resume_after_truncation_solves(self):
        dsl = get_domain("pexfun").dsl()
        sig = Signature("f", (("x", INT),), INT)
        session = TdsSession(
            sig,
            dsl,
            budget_factory=lambda: Budget(
                max_seconds=20.0, max_expressions=200_000
            ),
            options=TdsOptions(timeout_s=0.002),
        )
        examples = [Example((1,), 4), Example((2,), 7), Example((5,), 16)]
        for example in examples:
            session.add_example(example)
        truncated = session.finalize()
        resumed = session.resume(timeout_s=0)
        assert resumed.success
        fn = session.current_function()
        for example in examples:
            assert fn(*example.args) == example.output
        # The truncated attempt must not have been a success already —
        # otherwise this test stopped exercising resume.
        assert not truncated.success or resumed.success

    def test_redone_generation_adding_nothing_is_not_exhaustion(self):
        """A truncation landing *after* the last admittable combination
        of a generation makes the warm redo add zero entries; the next
        run must press on to the following generation instead of
        reporting search_exhausted (the resume-flakiness bug)."""
        from repro.core.dbs import DbsStats
        from repro.core.engine import Enumerator, PoolStore
        from repro.core.types import STRING

        dsl = get_domain("strings").dsl()
        sig = Signature("f", (("v", STRING),), STRING)
        examples = [Example(("ab cd",), "ab")]
        stats = DbsStats()
        pool = PoolStore(
            dsl,
            sig,
            examples,
            budget=Budget(max_seconds=30.0, max_expressions=100_000),
            metrics=stats.registry,
        )
        enumerator = Enumerator(pool)
        enumerator.seed([])
        first = enumerator.advance()
        assert first  # generation 1 ran to completion
        # Simulate a deadline that struck after every combination of
        # generation 1 had been offered but before the generator could
        # mark the generation complete.
        pool.incomplete_generation = True
        pool.bind(stats.registry, Budget(max_seconds=30.0))
        assert pool.pending_redo
        redo = enumerator.advance()
        assert redo == []  # every re-offered combo dedups away
        assert pool.last_generation_redone
        # The zero-add redo is inconclusive: the next generation must
        # still produce fresh expressions (and clear the redo marker).
        fresh = enumerator.advance()
        assert fresh
        assert not pool.last_generation_redone


# -- differential: truncated+resumed == unbudgeted, all four domains --

STRINGS_SRC = """
language strings;
function string F(string s);
require F("http://www.bing.com/search") == "bing.com";
require F("https://mail.google.com/mail") == "mail.google.com";
"""

PEXFUN_SRC = """
language pexfun;
function int Max2(int x, int y);
require Max2(1, 2) == 2;
require Max2(7, 3) == 7;
require Max2(4, 4) == 4;
"""


def _suite_source(suite_name, bench_name):
    bench = next(
        b for b in ALL_SUITES[suite_name] if b.name == bench_name
    )
    return bench.source


def _fast_budget():
    return Budget(max_seconds=20.0, max_expressions=250_000)


@pytest.mark.parametrize(
    "source_fn",
    [
        lambda: STRINGS_SRC,
        lambda: _suite_source("tables", "transpose"),
        lambda: _suite_source("xml", "add-classes"),
        lambda: PEXFUN_SRC,
    ],
    ids=["strings", "tables", "xml", "pexfun"],
)
def test_truncated_then_resumed_matches_unbudgeted(source_fn):
    source = source_fn()
    baseline = synthesize(source, budget_factory=_fast_budget)
    truncated = synthesize(
        source,
        budget_factory=_fast_budget,
        options=TdsOptions(timeout_s=0.02),
    )
    resumed = resume_lasy(truncated, timeout_s=0)
    assert resumed.success == baseline.success
    for name, fn in baseline.functions.items():
        assert name in resumed.functions
