"""§3.2's general while-loop as a plain higher-order component.

"Note that loops can be handled in a pure way by using lambdas. In
general a while loop can be written using the function
``WhileLoop(condition, body, final) = state => condition(state) ?
WhileLoop(condition, body, final)(body(state)) : final(state)``."

This test defines exactly that component in a DSL and has DBS synthesize
a loop with it — no special strategy involved, which is the point.
"""

from repro.core.budget import Budget
from repro.core.dsl import DslBuilder, Example, LambdaSpec, Signature
from repro.core.evaluator import EvaluationError
from repro.core.tds import tds
from repro.core.types import BOOL, INT

_STEP_CAP = 10_000


def while_loop(condition, body, final):
    """The paper's WhileLoop, iteratively (Python has no TCO)."""

    def run(state):
        steps = 0
        while condition(state):
            state = body(state)
            steps += 1
            if steps > _STEP_CAP:
                raise EvaluationError("while loop diverged")
        return final(state)

    return run


def apply_state(loop, state):
    return loop(state)


def while_loop2(condition, body):
    """Binary convenience form with an identity final — an expert DSL
    choice: the ternary WhileLoop's three independent lambda slots cube
    the search space, which is exactly why §5.3 exists."""
    return while_loop(condition, body, lambda s: s)


def make_dsl():
    b = DslBuilder("while", start="P")
    b.nt("P", INT)
    b.nt("e", INT)
    b.nt("b", BOOL)
    b.nt("loop", INT)  # opaque: a state->int closure
    b.param("e")
    b.constant("e")
    b.fn("e", "Half", ["e"], lambda v: v // 2)
    b.fn("e", "Inc", ["e"], lambda v: v + 1)
    b.fn("b", "IsEven", ["e"], lambda v: v % 2 == 0)
    b.fn(
        "loop",
        "WhileLoop",
        [
            LambdaSpec(("s1",), (INT,), "b"),
            LambdaSpec(("s2",), (INT,), "e"),
        ],
        while_loop2,
    )
    b.var("e", "s1")
    b.var("e", "s2")
    b.fn("P", "ApplyState", ["loop", "e"], apply_state)
    b.unit("P", "e")
    b.constants_from(lambda ex: {"e": [0, 1, 2]})
    return b.build()


class TestWhileLoopComponent:
    def test_component_semantics(self):
        strip_twos = while_loop(
            lambda s: s % 2 == 0, lambda s: s // 2, lambda s: s
        )
        assert strip_twos(24) == 3
        assert strip_twos(7) == 7

    def test_divergence_bounded(self):
        import pytest

        spin = while_loop(lambda s: True, lambda s: s, lambda s: s)
        with pytest.raises(EvaluationError):
            spin(1)

    def test_dbs_synthesizes_through_whileloop(self):
        # f(x) = strip all factors of two: only expressible via the loop.
        dsl = make_dsl()
        examples = [
            Example((8,), 1),
            Example((12,), 3),
            Example((7,), 7),
            Example((20,), 5),
        ]
        result = tds(
            Signature("f", (("x", INT),), INT),
            examples,
            dsl,
            budget_factory=lambda: Budget(
                max_seconds=25, max_expressions=250_000
            ),
        )
        assert result.success, "WhileLoop-based program not found"
        assert "WhileLoop" in str(result.program)
        fn = result.function()
        assert fn(48) == 3
        assert fn(5) == 5
