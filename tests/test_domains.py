"""Tests for the domain substrates (strings, tables, xml, pexfun)."""

import pytest

from repro.core.dsl import Example
from repro.core.evaluator import EvaluationError
from repro.domains import get_domain, known_domains
from repro.domains import strings as S
from repro.domains import tables as T
from repro.domains import pexfun as P
from repro.domains.xmldsl import (
    group_rows_by_attr,
    propagate_attr,
    rename_attr,
)
from repro.domains.xmltree import parse_xml
from repro.core.types import STRING, XML


class TestRegistry:
    def test_builtins_registered(self):
        names = set(known_domains())
        assert {"strings", "tables", "xml", "pexfun"} <= names

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_domain("nope")

    def test_dsl_cached(self):
        domain = get_domain("strings")
        assert domain.dsl() is domain.dsl()

    def test_rule_counts_near_paper_limit(self):
        # §5.1: "around 40-50 grammar rules seems to be the limit".
        assert 30 <= get_domain("strings").dsl().num_rules <= 55
        assert 25 <= get_domain("xml").dsl().num_rules <= 55


class TestStringPositions:
    def test_cpos_positive_and_negative(self):
        assert S.resolve_position(S.cpos(0), "abc") == 0
        assert S.resolve_position(S.cpos(-1), "abc") == 3
        assert S.resolve_position(S.cpos(-2), "abc") == 2

    def test_cpos_out_of_range(self):
        with pytest.raises(EvaluationError):
            S.resolve_position(S.cpos(9), "abc")

    def test_pos_token_boundary(self):
        # The boundary after the '@' in an email.
        position = S.pos(S.token_seq("At"), S.EPSILON, 1)
        assert S.resolve_position(position, "a@b.com") == 2

    def test_pos_negative_count(self):
        position = S.pos(S.token_seq("Space"), S.EPSILON, -1)
        assert S.resolve_position(position, "a b c") == 4

    def test_pos_no_match(self):
        position = S.pos(S.token_seq("At"), S.EPSILON, 1)
        with pytest.raises(EvaluationError):
            S.resolve_position(position, "nope")

    def test_rel_pos(self):
        # The 2nd space boundary after position 0 in "a b c d".
        base = S.cpos(0)
        position = S.rel_pos(base, S.token_seq("Space"), 2)
        assert S.resolve_position(position, "a b c d") == 3

    def test_rel_pos_before(self):
        base = S.cpos(-1)
        position = S.rel_pos(base, S.token_seq("Space"), -1)
        assert S.resolve_position(position, "a b") == 1

    def test_pos_within_limit(self):
        # Last space at or before offset 4 in "ab cd ef".
        position = S.pos_within(S.token_seq("Space"), S.EPSILON, -1, 4)
        assert S.resolve_position(position, "ab cd ef") == 3

    def test_substr(self):
        assert S.substr("hello world", S.cpos(0), S.cpos(5)) == "hello"

    def test_substr_inverted_range(self):
        with pytest.raises(EvaluationError):
            S.substr("abc", S.cpos(2), S.cpos(1))


class TestStringComponents:
    def test_match_counts_occurrences(self):
        assert S.match("a b c", S.token_seq("Space"), 2)
        assert not S.match("a b c", S.token_seq("Space"), 3)

    def test_loop_concatenates_until_error(self):
        def body(w):
            if w >= 3:
                raise EvaluationError("done")
            return str(w)

        assert S.flash_loop(body) == "012"

    def test_split_and_merge(self):
        assert (
            S.split_and_merge("a,b,c", ",", "; ", lambda p: p.upper())
            == "A; B; C"
        )

    def test_constant_inference_finds_output_only_chars(self):
        examples = [Example(("ab",), "a-b")]
        constants = S.infer_string_constants(examples)
        assert "-" in constants

    def test_constant_inference_affixes(self):
        examples = [
            Example(("x",), "Dr. x"),
            Example(("y",), "Dr. y"),
        ]
        assert "Dr. " in S.infer_string_constants(examples)

    def test_output_infix_filter(self):
        examples = [Example(("in",), "out")]
        assert S.output_infix_filter(("ou",), examples)
        assert not S.output_infix_filter(("zz",), examples)
        # Error-only vectors are inconclusive and kept.
        from repro.core.values import ERROR

        assert S.output_infix_filter((ERROR,), examples)


class TestTables:
    def grid(self):
        return T.table([["h1", "h2"], ["a", "1"], ["b", "2"]])

    def test_rectangularity_enforced(self):
        with pytest.raises(EvaluationError):
            T.table([["a"], ["b", "c"]])

    def test_transpose_involution(self):
        grid = self.grid()
        assert T.transpose(T.transpose(grid)) == grid

    def test_get_row_col_cell(self):
        grid = self.grid()
        assert T.get_row(grid, 1) == ("a", "1")
        assert T.get_col(grid, 0) == ("h1", "a", "b")
        assert T.get_cell(grid, 2, 1) == "2"

    def test_drop_and_stack(self):
        grid = self.grid()
        body = T.drop_row(grid, 0)
        assert T.stack(T.take_rows(grid, 1), body) == grid

    def test_stack_width_mismatch(self):
        with pytest.raises(EvaluationError):
            T.stack(T.table([["a"]]), T.table([["a", "b"]]))

    def test_unpivot(self):
        grid = T.table(
            [["name", "jan", "feb"], ["ann", "3", ""], ["bo", "", "7"]]
        )
        assert T.unpivot(grid, 1) == (
            ("ann", "jan", "3"),
            ("bo", "feb", "7"),
        )

    def test_fill_down(self):
        grid = T.table([["k", "1"], ["", "2"]])
        assert T.fill_down(grid, 0) == (("k", "1"), ("k", "2"))

    def test_promote_subheaders(self):
        grid = T.table([["A", ""], ["x", "1"]])
        assert T.promote_subheaders(grid) == (("A", "x", "1"),)

    def test_map_rows(self):
        grid = T.table([["a", "b"]])
        assert T.map_rows(grid, T.row_reverse) == (("b", "a"),)


class TestXmlComponents:
    def test_propagate_attr_matches_fig4(self):
        doc = parse_xml(
            "<doc><p>1</p><p class='a'>2</p><p>3</p>"
            "<p class='b'>5</p><p>6</p></doc>"
        )
        result = propagate_attr(doc, "class")
        classes = [
            e.attr("class") if e.has_attr("class") else None
            for e in result.elements()
        ]
        assert classes == [None, "a", "a", "b", "b"]

    def test_rename_attr(self):
        node = parse_xml("<img src='a.png'/>")
        renamed = rename_attr(node, "src", "href")
        assert renamed.attr("href") == "a.png"
        assert not renamed.has_attr("src")

    def test_rename_attr_missing(self):
        with pytest.raises(EvaluationError):
            rename_attr(parse_xml("<img/>"), "src", "href")

    def test_group_rows_aligns_by_key(self):
        doc = parse_xml(
            "<doc><div><p name='a'>1</p></div>"
            "<div><p name='a'>2</p><p name='b'>3</p></div></doc>"
        )
        rows = group_rows_by_attr(doc.elements(), "p", "name")
        assert [r.tag for r in rows] == ["tr", "tr"]
        assert rows[0].elements()[0].text() == "1"
        assert rows[1].elements()[0].text() == ""  # missing cell empty

    def test_coercion_parses_strings(self):
        domain = get_domain("xml")
        node = domain.coerce(XML, "<p>x</p>")
        assert node.tag == "p"
        assert domain.coerce(STRING, "plain") == "plain"


class TestPexfunComponents:
    def test_csharp_division_truncates_toward_zero(self):
        assert P.div(-7, 2) == -3
        assert P.mod(-7, 2) == -1

    def test_division_by_zero_errors(self):
        with pytest.raises(EvaluationError):
            P.div(1, 0)

    def test_substring_csharp_range_check(self):
        with pytest.raises(EvaluationError):
            P.substring("abc", 1, 5)
        assert P.substring("abcdef", 1, 3) == "bcd"

    def test_arr_set(self):
        assert P.arr_set_i((1, 2, 3), 1, 9) == (1, 9, 3)
        with pytest.raises(EvaluationError):
            P.arr_set_i((1,), 5, 0)

    def test_type_guards(self):
        with pytest.raises(EvaluationError):
            P.add("1", 2)
        with pytest.raises(EvaluationError):
            P.to_upper(3)

    def test_constants_include_output_affixes(self):
        examples = [
            Example(("Ann",), "Hello, Ann"),
            Example(("Bo",), "Hello, Bo"),
        ]
        constants = P.pexfun_constants(examples)
        assert "Hello, " in constants["str"]
