"""Tests for contexts and subexpressions (repro.core.contexts, §4.2)."""

from repro.core.contexts import (
    Context,
    branch_taken,
    contexts_of,
    prune_contexts,
    subexpressions_of,
    trivial_context,
)
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.expr import (
    Call,
    Const,
    Foreach,
    Function,
    Hole,
    If,
    Lambda,
    Param,
    Var,
    get_at,
)
from repro.core.types import BOOL, INT, list_of

ADD = Function("Add", (INT, INT), INT, lambda a, b: a + b)
NEG = Function("Neg", (INT,), INT, lambda a: -a)
LE = Function("Le", (INT, INT), BOOL, lambda a, b: a <= b)


def dsl():
    b = DslBuilder("t", start="e")
    b.nt("e", INT).nt("b", BOOL)
    b.param("e")
    b.rule("e", ADD, ["e", "e"])
    b.rule("e", NEG, ["e"])
    b.rule("b", LE, ["e", "e"])
    b.conditional("e", guard_nt="b", branch_nt="e")
    return b.build()


SIG = Signature("f", (("x", INT),), INT)


def x():
    return Param("x", INT, "e")


def const(v):
    return Const(v, INT, "e")


class TestContextExtraction:
    def test_trivial_context_present(self):
        contexts = contexts_of(x(), dsl())
        assert any(c.is_trivial for c in contexts)

    def test_one_context_per_subexpression(self):
        program = Call(ADD, (Call(NEG, (x(),), "e"), const(1)), "e")
        contexts = contexts_of(program, dsl())
        # trivial, whole-program hole (same shape as trivial), and one
        # context per proper subexpression: Neg(x), x, 1.
        assert len(contexts) == 5

    def test_each_context_has_one_hole(self):
        program = Call(ADD, (Call(NEG, (x(),), "e"), const(1)), "e")
        for ctx in contexts_of(program, dsl()):
            holes = [n for n in ctx.root.walk() if isinstance(n, Hole)]
            assert len(holes) == 1

    def test_plug_restores_original(self):
        program = Call(ADD, (Call(NEG, (x(),), "e"), const(1)), "e")
        for ctx in contexts_of(program, dsl()):
            if ctx.is_trivial:
                continue
            removed = get_at(program, ctx.path)
            if ctx.root == program or True:
                plugged = ctx.plug(removed)
                # Branch contexts rebuild the branch, not the program;
                # whole-program contexts restore the program exactly.
                assert isinstance(plugged, type(ctx.plug(removed)))

    def test_whole_program_contexts_roundtrip(self):
        program = Call(ADD, (x(), const(1)), "e")
        for ctx in contexts_of(program, dsl()):
            if ctx.is_trivial:
                continue
            removed_hole = [n for n in ctx.root.walk() if isinstance(n, Hole)]
            assert removed_hole
            # plugging the removed subexpression of the *context root*
            # always reproduces a well-formed expression
            assert ctx.plug(x()).size >= 1

    def test_branch_contexts_from_conditional(self):
        program = If(
            ((Call(LE, (x(), const(0)), "b"), const(-1)),),
            Call(NEG, (x(),), "e"),
            "e",
        )
        contexts = contexts_of(program, dsl())
        # Contexts rooted at a branch body (not the whole program).
        branch_rooted = [
            c for c in contexts if not isinstance(c.root, (If, Hole))
        ]
        assert branch_rooted

    def test_loop_lambda_slot_not_a_hole(self):
        body = Lambda(
            (
                Var("i", INT, "c"),
                Var("current", INT, "c"),
                Var("acc", list_of(INT), "a"),
            ),
            Var("current", INT, "c"),
            "λ",
        )
        program = Foreach(Param("xs", list_of(INT), "e"), body, "e")
        for ctx in contexts_of(program, dsl()):
            node = (
                get_at(program, ctx.path) if not ctx.is_trivial else None
            )
            if node is not None and isinstance(node, Lambda):
                raise AssertionError("lambda slot must not become a hole")


class TestSubexpressions:
    def test_all_nodes_collected(self):
        program = Call(ADD, (Call(NEG, (x(),), "e"), const(1)), "e")
        rendered = {str(e) for e in subexpressions_of(program)}
        assert rendered == {"Add(Neg(x), 1)", "Neg(x)", "x", "1"}

    def test_duplicates_collapsed(self):
        program = Call(ADD, (x(), x()), "e")
        assert sum(1 for e in subexpressions_of(program) if str(e) == "x") == 1


class TestBranchTaken:
    def program(self):
        return If(
            ((Call(LE, (x(), const(0)), "b"), const(-1)),),
            const(1),
            "e",
        )

    def test_guard_true_takes_branch_zero(self):
        assert branch_taken(self.program(), SIG, Example((-3,), -1)) == 0

    def test_guard_false_takes_else(self):
        assert branch_taken(self.program(), SIG, Example((3,), 1)) == 1

    def test_non_conditional_is_none(self):
        assert branch_taken(x(), SIG, Example((3,), 3)) is None


class TestPruning:
    def test_unreached_branch_contexts_dropped(self):
        program = If(
            ((Call(LE, (x(), const(0)), "b"), Call(NEG, (x(),), "e")),),
            Call(ADD, (x(), const(1)), "e"),
            "e",
        )
        # The failing example takes the else branch (x=5 > 0).
        failing = [Example((5,), 999)]
        kept = prune_contexts(
            contexts_of(program, dsl()), program, SIG, failing
        )
        for ctx in kept:
            if ctx.is_trivial:
                continue
            # No whole-program context may point inside the then-body.
            if ctx.root.size == program.size and ctx.path[:1] == (1,):
                raise AssertionError(
                    f"then-branch context survived pruning: {ctx}"
                )

    def test_no_failures_keeps_everything(self):
        program = If(
            ((Call(LE, (x(), const(0)), "b"), const(-1)),),
            const(1),
            "e",
        )
        contexts = contexts_of(program, dsl())
        assert prune_contexts(contexts, program, SIG, []) == contexts

    def test_plain_program_untouched(self):
        program = Call(ADD, (x(), const(1)), "e")
        contexts = contexts_of(program, dsl())
        kept = prune_contexts(
            contexts, program, SIG, [Example((1,), 0)]
        )
        assert kept == contexts


class TestTrivialContext:
    def test_hole_nt_is_start(self):
        ctx = trivial_context(dsl())
        assert ctx.hole_nt == "e"
        assert ctx.plug(x()) == x()
