"""Unit tests for the layered synthesis engine (repro.core.engine):
PoolStore example extension, the strategy registry, and session reuse."""

import os
import pickle

import pytest

from repro.core.budget import Budget
from repro.core.contexts import trivial_context
from repro.core.dbs import DbsOptions, DbsStats
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.engine import (
    Enumerator,
    PoolStore,
    StrategyRegistry,
    SynthesisSession,
    default_registry,
)
from repro.core.expr import Call, Const, Param
from repro.core.tds import TdsOptions, TdsSession
from repro.core.types import INT
from repro.obs.trace import NULL_TRACER

SIG = Signature("f", (("x", INT),), INT)


# Module-level so a DSL built over them stays picklable (the TdsSession
# pickling test ships the whole session).
def _neg(v):
    return -v


def _add(a, c):
    return a + c


def _default_constants(examples):
    return {"e": [0, 1]}


def tiny_dsl(constants=_default_constants, admission=None):
    b = DslBuilder("tiny", start="e")
    b.nt("e", INT)
    b.fn("e", "Neg", ["e"], _neg)
    b.fn("e", "Add", ["e", "e"], _add)
    b.param("e")
    b.constant("e")
    b.constants_from(constants)
    if admission is not None:
        b.admission_filter("e", admission)
    return b.build()


def make_pool(dsl, examples):
    stats = DbsStats()
    budget = Budget(max_seconds=30.0, max_expressions=10**7)
    pool = PoolStore(
        dsl, SIG, list(examples), budget=budget, metrics=stats.registry
    )
    return pool, Enumerator(pool), stats


class TestPoolExtend:
    def test_widening_reuses_every_entry(self):
        dsl = tiny_dsl()
        pool, enumerator, stats = make_pool(dsl, [Example((1,), 0)])
        enumerator.seed([])
        enumerator.advance()
        before = pool.total()
        assert before > 0

        report = pool.extend_examples([Example((2,), 0)])
        # Static constants, no admission filter, separating input: every
        # entry survives the widening (shadows that the new example
        # separates may additionally revive — e.g. Const 1 vs x on the
        # input 1).
        assert report["reused"] == before
        assert report["invalidated"] == 0
        assert report["pruned"] == 0
        assert pool.total() == before + report["revived"]
        assert len(pool.examples) == 2
        for nt in ("e",):
            for entry in pool.iter_entries(nt):
                if entry.values is not None:
                    assert len(entry.values) == 2
        # The report lands on the bound registry as pool.entries_*.
        assert stats.registry.value("pool.entries_reused") == before
        assert stats.registry.value("pool.entries_invalidated") == 0

    def test_admission_filter_invalidates_on_widened_vector(self):
        # Entries are admitted while every value is small, then the
        # appended example blows some vectors past the filter.
        dsl = tiny_dsl(admission=lambda values, examples: all(
            v < 50 for v in values
        ))
        pool, enumerator, stats = make_pool(dsl, [Example((1,), 0)])
        enumerator.seed([])
        enumerator.advance()
        assert pool.total() > 0

        report = pool.extend_examples([Example((40,), 0)])
        # Add(x, x) = 80 > 50 on the new example (at minimum).
        assert report["invalidated"] >= 1
        assert (
            stats.registry.value("pool.entries_invalidated")
            == report["invalidated"]
        )
        for entry in pool.iter_entries("e"):
            if entry.values is not None:
                assert all(v < 50 for v in entry.values)

    def test_semantic_collision_shadows_then_revives(self):
        dsl = tiny_dsl()
        fns = {f.name: f for f in dsl.functions()}
        pool, _, stats = make_pool(dsl, [Example((0,), 0)])
        x = Param("x", INT, "e")
        neg_x = Call(fns["Neg"], (x,), "e")
        assert pool.offer(x) is not None
        # Neg(x) == x on the input 0: semantically rejected, remembered
        # as a shadow (it is hash-consed and could never be re-offered).
        assert pool.offer(neg_x) is None
        assert neg_x not in pool.expressions("e")

        report = pool.extend_examples([Example((3,), 0)])
        # On (0, 3) the vectors are (0, 3) vs (0, -3): separated, so the
        # shadow is revived into the pool.
        assert report["revived"] == 1
        assert stats.registry.value("pool.entries_revived") == 1
        assert neg_x in pool.expressions("e")
        revived = next(
            e for e in pool.iter_entries("e") if e.expr == neg_x
        )
        assert revived.values == (0, -3)

    def test_stale_constants_pruned_unless_seeded(self):
        # Constants track the latest example, so extension retires the
        # old atom; everything built over it is forgotten (Algorithm 1)
        # unless the constant survives in the re-seeded P_i. The offset
        # keeps the constant from colliding semantically with Param x.
        constants = lambda examples: {"e": [examples[-1].args[0] + 1]}
        for seeds, expect_pruned in ((), True), ((Const(5, INT, "e"),), False):
            dsl = tiny_dsl(constants=constants)
            pool, enumerator, stats = make_pool(dsl, [Example((4,), 0)])
            enumerator.seed([])
            enumerator.advance()
            assert any(
                isinstance(node, Const) and node.value == 5
                for entry in pool.iter_entries("e")
                for node in entry.expr.walk()
            )

            report = pool.extend_examples([Example((6,), 0)], seeds=seeds)
            has_stale = any(
                isinstance(node, Const) and node.value == 5
                for entry in pool.iter_entries("e")
                for node in entry.expr.walk()
            )
            if expect_pruned:
                assert report["pruned"] >= 1
                assert not has_stale
            else:
                assert has_stale
            assert (
                stats.registry.value("pool.entries_pruned")
                == report["pruned"]
            )

    def test_empty_extension_is_a_no_op(self):
        dsl = tiny_dsl()
        pool, enumerator, _ = make_pool(dsl, [Example((1,), 0)])
        enumerator.seed([])
        before = pool.total()
        report = pool.extend_examples([])
        assert report == {
            "reused": 0, "invalidated": 0, "revived": 0, "pruned": 0
        }
        assert pool.total() == before and len(pool.examples) == 1


class TestStrategyRegistry:
    def test_default_registry_stages(self):
        registry = default_registry()
        assert registry.names() == ["composition", "conditionals", "loops"]
        assert [e.name for e in registry.for_stage("startup")] == ["loops"]
        assert [e.name for e in registry.for_stage("round")] == [
            "composition",
            "conditionals",
        ]

    def test_final_only_filters_round_stage(self):
        registry = default_registry()
        finals = registry.for_stage("round", final_only=True)
        assert [e.name for e in finals] == ["composition"]

    def test_order_then_name_breaks_ties(self):
        registry = StrategyRegistry()
        registry.register("b", lambda *a: None, order=10)
        registry.register("a", lambda *a: None, order=10)
        registry.register("z", lambda *a: None, order=5)
        assert [e.name for e in registry.for_stage("round")] == [
            "z", "a", "b"
        ]

    def test_duplicate_and_bad_stage_rejected(self):
        registry = StrategyRegistry()
        registry.register("s", lambda *a: None)
        with pytest.raises(ValueError):
            registry.register("s", lambda *a: None)
        registry.register("s", lambda *a: None, replace=True)
        with pytest.raises(ValueError):
            registry.register("t", lambda *a: None, stage="nope")

    def test_clone_is_independent(self):
        registry = default_registry()
        clone = registry.clone()
        clone.unregister("loops")
        assert clone.get("loops") is None
        assert registry.get("loops") is not None


def _begin(session, examples, stats=None):
    return session.begin_run(
        contexts=[trivial_context(session.dsl)],
        examples=examples,
        seeds=[],
        budget=Budget(max_seconds=30.0, max_expressions=10**7),
        options=DbsOptions(),
        stats=stats or DbsStats(),
        tracer=NULL_TRACER,
    )


class TestSynthesisSession:
    def test_prefix_extension_keeps_the_pool(self):
        session = SynthesisSession(tiny_dsl(), SIG)
        _begin(session, [Example((1,), 0)])
        first_pool = session.pool
        _begin(session, [Example((1,), 0), Example((2,), 0)])
        assert session.pool is first_pool
        assert session.runs == 2
        assert len(session.pool.examples) == 2
        assert session.reuse_totals["reused"] > 0

    def test_non_prefix_examples_rebuild_cold(self):
        session = SynthesisSession(tiny_dsl(), SIG)
        _begin(session, [Example((1,), 0)])
        first_pool = session.pool
        _begin(session, [Example((9,), 0)])
        assert session.pool is not first_pool
        assert session.reuse_totals["reused"] == 0

    def test_reordered_prefix_extends_warm(self):
        # The held examples appear again merely permuted (plus a new
        # one): the session canonicalizes by permuting the pool's
        # per-example columns instead of rebuilding cold.
        session = SynthesisSession(tiny_dsl(), SIG)
        e1, e2, e3 = Example((1,), 0), Example((2,), 0), Example((3,), 0)
        _begin(session, [e1, e2])
        first_pool = session.pool
        _begin(session, [e2, e1, e3])
        assert session.pool is first_pool
        assert session.reuse_totals["reused"] > 0
        assert list(session.pool.examples) == [e2, e1, e3]
        # Cached value vectors follow the permutation (then widen by
        # the appended example): Param x now reads (2, 1, 3).
        param_values = [
            entry.values
            for entry in session.pool.iter_entries("e")
            if isinstance(entry.expr, Param)
        ]
        assert param_values == [(2, 1, 3)]

    def test_session_key_extension_is_exact_prefix_order(self):
        # The cache layer deliberately does NOT canonicalize order: a
        # reordered prefix is a different session key (the permutation
        # is resolved one layer down, inside the engine — see above).
        from repro.core.engine.keys import session_key_for

        e1, e2, e3 = Example((1,), 0), Example((2,), 0), Example((3,), 0)
        base = session_key_for("tiny", SIG, lasy_fns={})
        held = base.with_examples([e1, e2])
        assert base.with_examples([e1, e2, e3]).extends(held.examples)
        assert not base.with_examples([e2, e1, e3]).extends(held.examples)


def _small_budget():
    return Budget(max_seconds=10.0, max_expressions=50_000)


class TestTdsSessionEngine:
    def _session(self, reuse=True):
        return TdsSession(
            SIG,
            tiny_dsl(),
            budget_factory=_small_budget,
            options=TdsOptions(reuse_pool=reuse),
        )

    def test_engine_persists_across_examples(self):
        session = self._session()
        session.add_example(Example((3,), 4))
        engine = session._engine
        assert engine is not None and engine.runs == 1
        session.add_example(Example((5,), 6))
        assert session._engine is engine
        assert session.satisfies_all()

    def test_reuse_pool_off_means_no_engine(self):
        session = self._session(reuse=False)
        session.add_example(Example((3,), 4))
        assert session._engine is None
        assert session.satisfies_all()

    def test_pickling_preserves_the_warm_engine(self):
        session = self._session()
        session.add_example(Example((3,), 4))
        engine = session._engine
        assert engine is not None and engine.pool is not None
        held = engine.pool.total()
        clone = pickle.loads(pickle.dumps(session))
        assert clone.program == session.program
        # The engine travels: the clone starts from the cached pool, not
        # from scratch, so the next example extends warm.
        assert clone._engine is not None
        assert clone._engine is not engine
        assert clone._engine.pool is not None
        assert clone._engine.pool.total() == held
        reused_before = clone._engine.reuse_totals["reused"]
        pool_obj = clone._engine.pool
        # x+1 fails this one (DBS must run), and a program satisfying
        # both exists (the constant 4), so the iteration extends warm.
        clone.add_example(Example((2,), 4))
        assert clone.satisfies_all()
        assert clone._engine.pool is pool_obj
        assert clone._engine.reuse_totals["reused"] > reused_before

    def test_pickling_shares_one_lasy_mapping(self):
        # Session, engine, and pool must keep aliasing a single
        # lasy_fns dict across a round-trip, or refresh_lasy goes blind.
        session = self._session()
        session.add_example(Example((3,), 4))
        clone = pickle.loads(pickle.dumps(session))
        assert clone._engine.lasy_fns is clone.lasy_fns
        assert clone._engine.pool.lasy_fns is clone.lasy_fns

    def test_pickling_drops_an_unpicklable_engine_gracefully(self):
        # A DSL whose components close over unpicklable state (the
        # engine's pool then embeds it in cached entries) must not fail
        # the whole dump: the engine is dropped and the clone degrades
        # to a cold rebuild.
        session = self._session()
        session.add_example(Example((3,), 4))
        assert session._engine is not None
        session._engine.pool._unpicklable = open(os.devnull)
        try:
            clone = pickle.loads(pickle.dumps(session))
        finally:
            session._engine.pool._unpicklable.close()
            del session._engine.pool._unpicklable
        assert clone._engine is None
        assert clone.program == session.program
        clone.add_example(Example((-2,), -1))
        assert clone.satisfies_all()
