"""Tests for the rewrite engine (repro.core.rewrite)."""

import pytest

from repro.core.dsl import DslBuilder, DslError
from repro.core.expr import Call, Const, Function, Param
from repro.core.rewrite import (
    PCall,
    PConst,
    PVar,
    RewriteRule,
    Rewriter,
    RuleParseError,
    classify_rule,
    match,
    order_key,
    parse_rule,
)
from repro.core.types import INT

ADD = Function("Add", (INT, INT), INT, lambda a, b: a + b)
MUL = Function("Mul", (INT, INT), INT, lambda a, b: a * b)
TRIM = Function("Trim", (INT,), INT, lambda a: a)


def build_dsl(rules):
    b = DslBuilder("t", start="e")
    b.nt("e", INT)
    b.param("e")
    b.constant("e")
    b.rule("e", ADD, ["e", "e"])
    b.rule("e", MUL, ["e", "e"])
    b.rule("e", TRIM, ["e"])
    b.constants_from(lambda ex: {"e": [0, 1, 2]})
    for rule in rules:
        b.rewrite(rule)
    return b.build()


def x():
    return Param("x", INT, "e")


def y():
    return Param("y", INT, "e")


def const(v):
    return Const(v, INT, "e")


class TestMatching:
    def test_var_matches_anything(self):
        assert match(PVar("a"), x()) == {"a": x()}

    def test_repeated_var_must_agree(self):
        pattern = PCall("Add", (PVar("a"), PVar("a")))
        assert match(pattern, Call(ADD, (x(), x()), "e")) is not None
        assert match(pattern, Call(ADD, (x(), y()), "e")) is None

    def test_const_pattern(self):
        assert match(PConst(0), const(0)) is not None
        assert match(PConst(0), const(1)) is None

    def test_function_name_must_match(self):
        pattern = PCall("Mul", (PVar("a"), PVar("b")))
        assert match(pattern, Call(ADD, (x(), y()), "e")) is None


class TestClassification:
    def test_shrinking(self):
        rule = parse_rule("Trim(Trim(f0)) ==> f0", ["Trim"])
        assert classify_rule(rule) == "shrinking"

    def test_commutative_is_guarded(self):
        rule = parse_rule("Add(a0, a1) ==> Add(a1, a0)", ["Add"])
        assert classify_rule(rule) == "guarded"

    def test_growing_rejected(self):
        rule = RewriteRule(
            PVar("a"), PCall("Add", (PVar("a"), PVar("a")))
        )
        with pytest.raises(DslError):
            classify_rule(rule)

    def test_unbound_rhs_var_rejected(self):
        rule = RewriteRule(PVar("a"), PVar("b"))
        with pytest.raises(DslError):
            classify_rule(rule)


class TestCanonicalization:
    def test_shrinking_rule_applies(self):
        dsl = build_dsl([parse_rule("Trim(Trim(f0)) ==> f0", ["Trim"])])
        rewriter = Rewriter(dsl)
        expr = Call(TRIM, (Call(TRIM, (x(),), "e"),), "e")
        assert rewriter.canonicalize(expr) == x()

    def test_commutativity_orders_consistently(self):
        dsl = build_dsl([parse_rule("Add(a0, a1) ==> Add(a1, a0)", ["Add"])])
        rewriter = Rewriter(dsl)
        ab = Call(ADD, (x(), y()), "e")
        ba = Call(ADD, (y(), x()), "e")
        assert rewriter.canonicalize(ab) == rewriter.canonicalize(ba)

    def test_canonicalization_idempotent(self):
        dsl = build_dsl([parse_rule("Add(a0, a1) ==> Add(a1, a0)", ["Add"])])
        rewriter = Rewriter(dsl)
        expr = Call(ADD, (Call(ADD, (y(), x()), "e"), x()), "e")
        once = rewriter.canonicalize(expr)
        assert rewriter.canonicalize(once) == once

    def test_constant_folding(self):
        dsl = build_dsl([])
        rewriter = Rewriter(dsl)
        expr = Call(ADD, (const(2), const(3)), "e")
        folded = rewriter.canonicalize(expr)
        assert folded == const(5)

    def test_constant_folding_nested(self):
        dsl = build_dsl([])
        rewriter = Rewriter(dsl)
        expr = Call(MUL, (Call(ADD, (const(2), const(3)), "e"), const(2)), "e")
        assert rewriter.canonicalize(expr) == const(10)

    def test_folding_preserves_params(self):
        dsl = build_dsl([])
        rewriter = Rewriter(dsl)
        expr = Call(ADD, (x(), const(3)), "e")
        assert rewriter.canonicalize(expr) == expr

    def test_canonicalize_root_matches_full_on_pool_exprs(self):
        # Children built from canonical parts: root-only == full rewrite.
        dsl = build_dsl([parse_rule("Add(a0, a1) ==> Add(a1, a0)", ["Add"])])
        rewriter = Rewriter(dsl)
        inner = rewriter.canonicalize(Call(ADD, (y(), x()), "e"))
        expr = Call(ADD, (inner, x()), "e")
        assert rewriter.canonicalize_root(expr) == rewriter.canonicalize(expr)

    def test_canonicalize_root_is_memoized(self):
        dsl = build_dsl([parse_rule("Add(a0, a1) ==> Add(a1, a0)", ["Add"])])
        rewriter = Rewriter(dsl)
        expr = Call(ADD, (y(), x()), "e")
        first = rewriter.canonicalize_root(expr)
        # A structurally identical (hash-consed-equal) offer hits the
        # memo and returns the very same canonical node.
        again = rewriter.canonicalize_root(Call(ADD, (y(), x()), "e"))
        assert again is first
        assert expr in rewriter._root_cache

    def test_root_cache_does_not_leak_across_rewriters(self):
        plain = Rewriter(build_dsl([]))
        swapping = Rewriter(
            build_dsl([parse_rule("Add(a0, a1) ==> Add(a1, a0)", ["Add"])])
        )
        expr = Call(ADD, (y(), x()), "e")
        assert plain.canonicalize_root(expr) == expr
        assert swapping.canonicalize_root(expr) == Call(ADD, (x(), y()), "e")


class TestOrderKey:
    def test_smaller_first(self):
        assert order_key(x()) < order_key(Call(TRIM, (x(),), "e"))


class TestRuleParsing:
    def test_simple(self):
        rule = parse_rule("Trim(f0) ==> f0", ["Trim"])
        assert rule.lhs == PCall("Trim", (PVar("f0"),))
        assert rule.rhs == PVar("f0")

    def test_int_constant(self):
        rule = parse_rule("Mul(0, a0) ==> 0", ["Mul"])
        assert rule.lhs == PCall("Mul", (PConst(0), PVar("a0")))
        assert rule.rhs == PConst(0)

    def test_string_constant(self):
        rule = parse_rule('Trim("") ==> ""', ["Trim"])
        assert rule.lhs == PCall("Trim", (PConst(""),))

    def test_missing_arrow_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule("Trim(f0)", ["Trim"])

    def test_unterminated_call_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule("Trim(f0 ==> f0", ["Trim"])
