"""The synthesis service end to end: protocol, cache semantics,
admission control, structured timeouts, and journal persistence
(docs/service.md).

The servers here run in-process on a background thread (loopback TCP,
port 0) — the same asyncio/executor stack `repro serve` runs, minus the
CLI. The differential tests pin the service's defining property: a
cold server-synthesized program is byte-identical to what a direct
:func:`run_lasy` call produces — the service layer is routing plus
caching, never a different synthesizer.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import json
import socket
import threading
import time

import pytest

from repro.core.tds import TdsOptions
from repro.core.engine.cache import SessionCache
from repro.exec.checkpoint import Journal
from repro.exec.faults import FaultPlan, SimulatedCrash
from repro.lasy.parser import parse_lasy
from repro.lasy.runner import run_lasy
from repro.obs.metrics import Registry
from repro.serve.client import ServiceError, request
from repro.serve.server import ServerConfig, SynthesisServer

STRINGS = """
language strings;
function string F(string s);
require F("hello") == "hello!";
require F("ab") == "ab!";
require F("xyz") == "xyz!";
"""

PEXFUN = """
language pexfun;
function int Add1(int x);
require Add1(3) == 4;
require Add1(10) == 11;
"""

TABLES = """
language tables;
function Table Body(Table t);
require Body({{"name", "age"}, {"ann", "31"}, {"bo", "25"}})
     == {{"ann", "31"}, {"bo", "25"}};
require Body({{"h1", "h2"}, {"v", "w"}})
     == {{"v", "w"}};
"""

XML = """
language xml;
function XDocument Modern(XDocument d);
require Modern("<doc><b>hi</b><b>there</b></doc>")
     == "<doc><strong>hi</strong><strong>there</strong></doc>";
"""

# No constant/derivation path reaches these outputs, so the engine
# enumerates until its wall trips — the deterministic way to occupy a
# worker (admission control) or force a truncation (timeout shape).
HOPELESS = """
language pexfun;
function int H(int x);
require H(1) == 1000003;
require H(2) == -999983;
"""


@contextlib.contextmanager
def serve(**overrides):
    """A live server on a daemon thread; yields the bound port."""
    config = ServerConfig(port=0, default_timeout_s=30.0, **overrides)
    ready = threading.Event()
    state = {}

    def run() -> None:
        async def main() -> None:
            server = SynthesisServer(config, metrics=Registry())
            await server.start()
            state["port"] = server.address[1]
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(timeout=30), "server failed to start"
    try:
        yield state["port"]
    finally:
        with contextlib.suppress(OSError, ConnectionError):
            request({"op": "shutdown"}, port=state["port"], timeout=10)
        thread.join(timeout=10)


def synth(port: int, source: str, **fields):
    payload = {"op": "synthesize", "program": source}
    payload.update(fields)
    return request(payload, port=port, timeout=120, check=True)


# -- differential: server output == direct engine output -----------------


@pytest.mark.parametrize(
    "source",
    [STRINGS, PEXFUN, TABLES, XML],
    ids=["strings", "pexfun", "tables", "xml"],
)
def test_cold_server_program_matches_direct_run(source):
    direct = run_lasy(parse_lasy(source), options=TdsOptions())
    assert direct.success
    with serve() as port:
        response = synth(port, source)
    assert response["success"]
    for name, fn in direct.functions.items():
        served = response["functions"][name]
        assert served["program"] == str(fn.body)
        assert response["cache"][name] == {
            "hit": False,
            "reused_examples": 0,
        }


# -- cache semantics ------------------------------------------------------


def test_warm_repeat_hits_the_cache():
    with serve() as port:
        cold = synth(port, STRINGS)
        warm = synth(port, STRINGS)
    assert cold["cache"]["F"]["hit"] is False
    assert warm["cache"]["F"] == {"hit": True, "reused_examples": 3}
    assert warm["functions"] == cold["functions"]


def test_lookup_program_warm_repeat_hits():
    """Lookup tables fill example-by-example during the run, but their
    final contents are pure data from the program source — the acquire
    key fingerprints them pre-filled, so a repeated lookup-using request
    must hit (it used to key the empty table and miss forever)."""
    source = """
    language strings;
    lookup string Expand(string s);
    function string Greet(string s);
    require Expand("hi") == "hello";
    require Expand("yo") == "greetings";
    require Greet("hi") == "hello";
    require Greet("yo") == "greetings";
    """
    cache = SessionCache(capacity=4, metrics=Registry())
    cold = _run_cached(source, cache)
    warm = _run_cached(source, cache)
    assert cold.cache_info["Greet"]["hit"] is False
    assert warm.cache_info["Greet"] == {"hit": True, "reused_examples": 2}
    assert str(warm.functions["Greet"].body) == str(
        cold.functions["Greet"].body
    )


def test_reordered_examples_miss_at_the_cache_layer():
    """The exact-prefix contract: at the cache layer a reordered
    example sequence is a different session (no canonicalization — that
    lives inside the engine), so the run stays cold but correct."""
    cache = SessionCache(capacity=4, metrics=Registry())
    _run_cached(STRINGS, cache)
    lines = STRINGS.strip().splitlines()
    reordered = "\n".join(lines[:2] + [lines[3], lines[2], lines[4]])
    result = run_lasy(
        parse_lasy(reordered), options=TdsOptions(), session_cache=cache
    )
    assert result.success
    assert result.cache_info["F"]["hit"] is False


def test_prefix_extension_reuses_the_held_examples():
    two = "\n".join(STRINGS.strip().splitlines()[:-1])
    with serve() as port:
        first = synth(port, two)
        extended = synth(port, STRINGS)
    assert first["success"] and extended["success"]
    assert extended["cache"]["F"] == {"hit": True, "reused_examples": 2}


def test_stats_reports_cache_and_counters():
    with serve() as port:
        synth(port, STRINGS)
        synth(port, STRINGS)
        stats = request({"op": "stats"}, port=port, check=True)
    assert stats["cache"]["hits"] == 1
    assert stats["cache"]["misses"] == 1
    assert stats["cache"]["size"] == 1
    assert stats["counters"]["requests"] >= 3
    assert stats["inflight"] == 0


# -- protocol edges -------------------------------------------------------


def test_ping_and_malformed_requests():
    with serve() as port:
        assert request({"op": "ping"}, port=port, check=True)["version"] == 1
        with pytest.raises(ServiceError) as err:
            request({"op": "frobnicate"}, port=port, check=True)
        assert err.value.code == "bad-request"
        with pytest.raises(ServiceError) as err:
            request({"op": "synthesize"}, port=port, check=True)
        assert err.value.code == "bad-request"
        with pytest.raises(ServiceError) as err:
            request(
                {"op": "synthesize", "program": "language nope; f;"},
                port=port,
                check=True,
            )
        assert err.value.code == "parse-error"
        # Raw garbage (not even JSON) answers with a bad-request error
        # instead of dropping the connection.
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            stream = s.makefile("rwb")
            stream.write(b"this is not json\n")
            stream.flush()
            response = json.loads(stream.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"


def test_timeout_is_a_structured_response_not_an_error():
    with serve() as port:
        response = synth(port, HOPELESS, timeout_s=0.5)
    assert response["ok"] is True
    assert response["success"] is False
    assert response["truncated"] is True
    assert response["timeout_reasons"].get("H") == "deadline"
    # Nothing was synthesized, so nothing is returned as a function.
    assert response["functions"] == {}


def test_queue_depth_rejects_with_overloaded():
    with serve(max_workers=1, queue_depth=1) as port:
        # Occupy the only admission slot with a request that holds its
        # worker until the 1.5s wall, without reading the reply yet.
        blocker = socket.create_connection(("127.0.0.1", port), timeout=30)
        stream = blocker.makefile("rwb")
        stream.write(
            json.dumps(
                {"op": "synthesize", "program": HOPELESS, "timeout_s": 1.5}
            ).encode()
            + b"\n"
        )
        stream.flush()
        time.sleep(0.4)  # let the server admit it
        with pytest.raises(ServiceError) as err:
            synth(port, STRINGS)
        assert err.value.code == "overloaded"
        assert err.value.response["error"]["code"] == "overloaded"
        # The blocker still completes as a structured truncation.
        blocked = json.loads(stream.readline())
        blocker.close()
        assert blocked["ok"] is True and blocked["truncated"] is True
        # And the slot is free again afterwards.
        assert synth(port, STRINGS)["success"]


# -- journal persistence --------------------------------------------------


def test_restarted_server_comes_back_warm(tmp_path):
    journal = str(tmp_path / "cache.jsonl")
    with serve(journal_path=journal) as port:
        assert synth(port, STRINGS)["success"]
    # "Kill": the first server is gone; a new one replays the journal.
    with serve(journal_path=journal) as port:
        stats = request({"op": "stats"}, port=port, check=True)
        warm = synth(port, STRINGS)
    assert stats["cache"]["restored"] == 1
    assert warm["cache"]["F"] == {"hit": True, "reused_examples": 3}


# -- concurrent journal access (the satellite) ---------------------------


def _run_cached(source: str, cache: SessionCache):
    result = run_lasy(
        parse_lasy(source), options=TdsOptions(), session_cache=cache
    )
    assert result.success
    return result


def test_two_threads_writing_one_cache_journal(tmp_path):
    """The server shape: executor threads share one SessionCache whose
    releases all append to one journal. Concurrent releases must leave
    a journal that parses end to end and restores every session."""
    journal = str(tmp_path / "cache.jsonl")
    cache = SessionCache(
        capacity=8, metrics=Registry(), journal_path=journal
    )
    sources = [
        STRINGS.replace("F(", f"F{i}(")
        for i in range(4)
    ]
    errors = []

    def worker(my_sources) -> None:
        try:
            for source in my_sources:
                _run_cached(source, cache)
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(sources[0::2],)),
        threading.Thread(target=worker, args=(sources[1::2],)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    cache.close()
    assert not errors
    records, _valid = Journal.scan(journal)
    assert len(records) == 4  # one fsync'd line per release, none torn
    restored = SessionCache(
        capacity=8, metrics=Registry(), journal_path=journal
    )
    assert restored.stats()["restored"] == 4
    for source in sources:
        result = _run_cached(source, restored)
        name = next(iter(result.cache_info))
        assert result.cache_info[name]["hit"] is True
    restored.close()


def test_two_journal_handles_interleaved_appends(tmp_path):
    """Two *handles* on one journal path (two servers pointed at the
    same file by mistake, or a writer racing a late fsync): each append
    is one line written under flush+fsync, so interleaved records stay
    line-atomic and scan recovers all of them."""
    path = str(tmp_path / "shared.jsonl")
    a, b = Journal(path), Journal(path)
    barrier = threading.Barrier(2)

    def writer(journal, tag):
        barrier.wait()
        for i in range(20):
            journal.append({"key": f"{tag}-{i}", "result": i})

    threads = [
        threading.Thread(target=writer, args=(a, "a")),
        threading.Thread(target=writer, args=(b, "b")),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    a.close()
    b.close()
    records, _valid = Journal.scan(path)
    keys = {r["key"] for r in records}
    assert keys == {f"{tag}-{i}" for tag in "ab" for i in range(20)}


def test_torn_tail_recovery_under_injected_crash(tmp_path):
    """A writer killed mid-append (the fault layer's ``crash`` clause,
    manifesting as a half-written final line) loses exactly that one
    record: restore truncates the torn tail and later appends keep the
    journal sound — the session-cache analogue of docs/robustness.md's
    checkpoint recovery."""
    journal = str(tmp_path / "cache.jsonl")
    cache = SessionCache(
        capacity=8, metrics=Registry(), journal_path=journal
    )
    plan = FaultPlan.parse("crash:2")  # the third release dies mid-write
    sources = [
        STRINGS.replace("F(", f"F{i}(")
        for i in range(3)
    ]
    with pytest.raises(SimulatedCrash):
        for index, source in enumerate(sources):
            _run_cached(source, cache)
            plan.inject(index, 0)
    cache.close()
    # The kill landed mid-write: tear the last fsync'd record in half,
    # exactly what an interrupted write(2) leaves behind.
    with open(journal, "rb+") as fh:
        raw = fh.read()
        lines = raw.rstrip(b"\n").split(b"\n")
        fh.truncate(len(raw) - len(lines[-1]) // 2 - 1)
    restored = SessionCache(
        capacity=8, metrics=Registry(), journal_path=journal
    )
    assert restored.stats()["restored"] == len(sources) - 1
    # The torn bytes are gone from disk, so appends keep it parseable:
    _run_cached(sources[-1], restored)  # cold (its record was torn)
    restored.close()
    records, valid = Journal.scan(journal)
    assert len(records) == len(sources)
    with open(journal, "rb") as fh:
        assert valid == len(fh.read())  # no residual garbage
    for record in records:
        base64.b64decode(record["blob"])  # every surviving blob intact
