"""Tests for DSL definitions (repro.core.dsl)."""

import pytest

from repro.core.dsl import (
    DslBuilder,
    DslError,
    Example,
    LambdaSpec,
    Production,
    Signature,
)
from repro.core.types import BOOL, INT, STRING, fun, list_of


def minimal_builder():
    b = DslBuilder("t", start="e")
    b.nt("e", INT).nt("b", BOOL)
    b.param("e")
    b.fn("e", "Add", ["e", "e"], lambda a, c: a + c)
    b.fn("b", "Lt", ["e", "e"], lambda a, c: a < c)
    return b


class TestSignature:
    def test_accessors(self):
        sig = Signature("f", (("a", STRING), ("n", INT)), STRING)
        assert sig.param_names == ("a", "n")
        assert sig.param_types == (STRING, INT)
        assert str(sig) == "str f(str a, int n)"


class TestBuilder:
    def test_build_minimal(self):
        dsl = minimal_builder().build()
        assert dsl.start == "e"
        assert dsl.num_rules == 3

    def test_start_must_exist(self):
        b = DslBuilder("t", start="missing")
        b.nt("e", INT)
        with pytest.raises(DslError):
            b.build()

    def test_rule_with_unknown_nt_rejected(self):
        b = DslBuilder("t", start="e")
        b.nt("e", INT)
        with pytest.raises(DslError):
            b.fn("e", "F", ["nope"], lambda x: x)

    def test_nt_redeclaration_same_type_ok(self):
        b = DslBuilder("t", start="e")
        b.nt("e", INT).nt("e", INT)

    def test_nt_redeclaration_new_type_rejected(self):
        b = DslBuilder("t", start="e")
        b.nt("e", INT)
        with pytest.raises(DslError):
            b.nt("e", STRING)

    def test_conditional_guard_must_be_bool(self):
        b = minimal_builder()
        b.conditional("e", guard_nt="e", branch_nt="e")
        with pytest.raises(DslError):
            b.build()

    def test_conditional_wellformed(self):
        b = minimal_builder()
        b.conditional("e", guard_nt="b", branch_nt="e")
        dsl = b.build()
        assert dsl.conditionals[0].guard_nt == "b"

    def test_lambda_spec_infers_function_type(self):
        b = DslBuilder("t", start="e")
        b.nt("e", INT)
        b.param("e")
        spec = LambdaSpec(("w",), (INT,), "e")
        b.fn("e", "Loop", [spec], lambda f: f(0))
        dsl = b.build()
        loop = next(
            p for p in dsl.productions if p.kind == "call" and p.func.name == "Loop"
        )
        assert loop.func.param_types == (fun(INT, INT),)
        assert dsl.lambda_vars == {"w": INT}

    def test_lambda_var_type_conflict_rejected(self):
        b = DslBuilder("t", start="e")
        b.nt("e", INT).nt("s", STRING)
        b.param("e")
        b.fn("e", "L1", [LambdaSpec(("w",), (INT,), "e")], lambda f: f(0))
        with pytest.raises(DslError):
            b.fn("e", "L2", [LambdaSpec(("w",), (STRING,), "e")], lambda f: f(""))


class TestProduction:
    def test_call_requires_function(self):
        with pytest.raises(ValueError):
            Production("e", "call")

    def test_var_requires_name(self):
        with pytest.raises(ValueError):
            Production("e", "var")


class TestExpansion:
    def test_self_in_expansion(self):
        dsl = minimal_builder().build()
        assert dsl.expansion("e") == ("e",)

    def test_unit_production_expands(self):
        b = minimal_builder()
        b.nt("f", INT)
        b.unit("e", "f")
        dsl = b.build()
        assert set(dsl.expansion("e")) == {"e", "f"}

    def test_transitive_units(self):
        b = minimal_builder()
        b.nt("f", INT).nt("g", INT)
        b.unit("e", "f")
        b.unit("f", "g")
        dsl = b.build()
        assert set(dsl.expansion("e")) == {"e", "f", "g"}

    def test_conditional_branch_in_expansion(self):
        b = DslBuilder("t", start="P")
        b.nt("P", INT).nt("e", INT).nt("b", BOOL)
        b.param("e")
        b.fn("b", "Lt", ["e", "e"], lambda a, c: a < c)
        b.conditional("P", guard_nt="b", branch_nt="e")
        dsl = b.build()
        assert set(dsl.expansion("P")) == {"P", "e"}


class TestConstants:
    def test_provider_invoked_with_examples(self):
        seen = []

        def provider(examples):
            seen.append(list(examples))
            return {"e": [1]}

        b = minimal_builder()
        b.constant("e")
        b.constants_from(provider)
        dsl = b.build()
        examples = [Example((1,), 2)]
        assert dsl.constants_for(examples) == {"e": [1]}
        assert seen == [examples]

    def test_no_provider_empty(self):
        dsl = minimal_builder().build()
        assert dsl.constants_for([]) == {}


class TestFunctionsQuery:
    def test_functions_deduped_by_name(self):
        dsl = minimal_builder().build()
        names = sorted(f.name for f in dsl.functions())
        assert names == ["Add", "Lt"]


class TestLoopRules:
    def test_foreach_rule_recorded(self):
        b = DslBuilder("t", start="P")
        b.nt("P", list_of(INT)).nt("e", INT)
        b.param("e")
        b.foreach("P", body_nt="e", variants=("forward", "reverse"))
        dsl = b.build()
        assert dsl.loops[0].kind == "foreach"
        assert dsl.loops[0].variants == ("forward", "reverse")

    def test_loop_rule_unknown_nt_rejected(self):
        b = DslBuilder("t", start="P")
        b.nt("P", list_of(INT))
        b.foreach("P", body_nt="missing")
        with pytest.raises(DslError):
            b.build()
