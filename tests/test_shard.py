"""Differential tests for sharded DBS generations (core.engine.shard).

The sharding contract is strict determinism: a run split across worker
processes must admit the *identical* pool — entries, order, shadow
buckets, interned signature table — and synthesize byte-identical
programs. These tests hold it to that at the engine level (pool-state
equality, expression-budget death), end to end across all four paper
domains in both enum modes, through a worker crash with retry, and
through the unpicklable-pool serial fallback.

DSL component functions here are module-level on purpose: shard workers
receive the pool as a pickle snapshot, and pickling resolves functions
by qualified name (``tests.test_shard.<fn>``). The lambda-built DSLs in
``test_enum_batched`` are *deliberately* reused for the fallback test —
they are exactly the unpicklable case sharding must survive.
"""

import os

import pytest

from repro.core.budget import Budget
from repro.core.dbs import DbsOptions, _shard_jobs, _shard_min_cost
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.engine import Enumerator, ShardCoordinator, ShardPlan
from repro.core.expr import Call, Const, Function, Param
from repro.core.tds import TdsOptions
from repro.core.types import INT, STRING
from tests.test_enum_batched import (
    DOMAIN_CASES,
    SIG,
    make_pool,
    pool_state,
    tiny_dsl as lambda_tiny_dsl,
)

# -- picklable fixture DSLs -------------------------------------------


def _neg(v):
    return -v


def _add(a, c):
    return a + c


def _mul(a, c):
    return a * c


def _concat(a, c):
    return a + c


def _repeat(s, n):
    return s * n


def _tiny_constants(examples):
    return {"e": [0, 1, 2]}


def _mixed_constants(examples):
    return {"s": ["-"], "n": [2]}


def shard_tiny_dsl():
    b = DslBuilder("tiny", start="e")
    b.nt("e", INT)
    b.fn("e", "Neg", ["e"], _neg)
    b.fn("e", "Add", ["e", "e"], _add)
    b.fn("e", "Mul", ["e", "e"], _mul)
    b.param("e")
    b.constant("e")
    b.constants_from(_tiny_constants)
    return b.build()


def shard_mixed_dsl():
    b = DslBuilder("mixed", start="s")
    b.nt("s", STRING).nt("n", INT)
    b.fn("s", "Concat", ["s", "s"], _concat)
    b.fn("s", "Repeat", ["s", "n"], _repeat)
    b.fn("n", "Add", ["n", "n"], _add)
    b.fn("n", "Len", ["s"], len)
    b.param("s")
    b.param("n")
    b.constants_from(_mixed_constants)
    return b.build()


MIXED_SIG = Signature("f", (("s", STRING), ("n", INT)), STRING)

MODES = ["batched", "classic"]


def counter(stats, name):
    snap = stats.registry.snapshot()
    entry = snap.get(name)
    return entry["value"] if entry else 0


def run_generations(
    dsl,
    signature,
    examples,
    mode,
    jobs=0,
    advances=2,
    max_expressions=10**7,
    extend=None,
):
    """Mirror of test_enum_batched.run_generations with an optional
    shard coordinator attached (min_cost=0 so every generation shards).
    ``extend`` re-attaches, as a warm dbs run would: pool extension
    mutates entries outside the delta log, so a new run starts from a
    fresh snapshot."""
    pool, stats = make_pool(
        dsl, signature, examples, max_expressions=max_expressions
    )
    enumerator = Enumerator(pool, enum_mode=mode)
    coord = None
    if jobs:
        coord = ShardCoordinator(jobs, min_cost=0)
        coord.attach(pool, enumerator)
    try:
        enumerator.seed([])
        for _ in range(advances):
            enumerator.advance()
        if extend is not None:
            pool.extend_examples([extend])
            if coord is not None:
                coord.attach(pool, enumerator)
            enumerator.seed([])
            enumerator.advance()
    finally:
        if coord is not None:
            coord.close()
    return pool, stats


# -- engine-level pool differential -----------------------------------


class TestPoolDifferential:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("extend", [None, Example((5,), 0)])
    def test_tiny_dsl_same_pool(self, mode, extend):
        examples = [Example((1,), 0), Example((3,), 0)]
        serial, _ = run_generations(
            shard_tiny_dsl(), SIG, examples, mode, extend=extend
        )
        sharded, stats = run_generations(
            shard_tiny_dsl(), SIG, examples, mode, jobs=2, extend=extend
        )
        assert counter(stats, "enum.shard.generations") > 0
        assert counter(stats, "enum.shard.fallbacks") == 0
        assert pool_state(sharded) == pool_state(serial)
        assert sharded.generation == serial.generation

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_mixed_dsl_same_pool(self, mode, jobs):
        examples = [Example(("ab", 2), "abab"), Example(("x", 3), "xxx")]
        serial, _ = run_generations(
            shard_mixed_dsl(), MIXED_SIG, examples, mode
        )
        sharded, stats = run_generations(
            shard_mixed_dsl(), MIXED_SIG, examples, mode, jobs=jobs
        )
        assert counter(stats, "enum.shard.generations") > 0
        assert pool_state(sharded) == pool_state(serial)

    @pytest.mark.parametrize("mode", MODES)
    def test_budget_death_matches(self, mode):
        # The expression budget must die on exactly the candidate the
        # serial schedule would have died on: the replay path recreates
        # the trip from per-production charge totals, dropping the dying
        # production's batch just as the serial loop does.
        examples = [Example((1,), 0), Example((3,), 0)]
        serial, _ = run_generations(
            shard_tiny_dsl(), SIG, examples, mode, max_expressions=120
        )
        sharded, stats = run_generations(
            shard_tiny_dsl(), SIG, examples, mode, jobs=2,
            max_expressions=120,
        )
        assert serial.exhausted and sharded.exhausted
        assert counter(stats, "enum.shard.generations") > 0
        assert pool_state(sharded) == pool_state(serial)


# -- cross-shard interning --------------------------------------------


ADD = Function("Add", (INT, INT), INT, _add)


class TestCrossShardInterning:
    def test_duplicate_signature_from_two_shards_collapses(self):
        # Two observationally equal candidates arriving from different
        # shards carry separately-built (equal, non-identical) raw
        # signature columns. Replay re-interns both against the parent
        # table: the second must dedup semantically, exactly as if one
        # in-process generation had offered both.
        examples = [Example((1,), 0), Example((3,), 0)]
        pool, _ = make_pool(shard_tiny_dsl(), SIG, examples)
        enumerator = Enumerator(pool, enum_mode="batched")
        enumerator.seed([])
        x = Param("x", INT, "e")
        one = Const(1, INT, "e")
        first = Call(ADD, (x, one), "e")
        second = Call(ADD, (one, x), "e")
        values = (2, 4)
        raw_a = ("v", (2, 4))
        raw_b = ("v", tuple(values))
        assert raw_a == raw_b and raw_a is not raw_b
        before = pool.total()
        assert pool.replay_batched(first, values, raw_a) is not None
        assert pool.replay_batched(second, values, raw_b) is None
        assert pool.total() == before + 1
        assert pool._intern_sig(raw_a) == pool._intern_sig(raw_b)

    def test_replay_admit_dedups_and_reinterns(self):
        examples = [Example((1,), 0), Example((3,), 0)]
        pool, _ = make_pool(shard_tiny_dsl(), SIG, examples)
        enumerator = Enumerator(pool, enum_mode="classic")
        enumerator.seed([])
        x = Param("x", INT, "e")
        two = Const(2, INT, "e")
        first = Call(ADD, (x, two), "e")
        second = Call(ADD, (two, x), "e")
        values = (3, 5)
        raw = ("v", (3, 5))
        assert pool.replay_admit(first, values, raw, False) is not None
        # Same expression again from another shard: syntactic dedup.
        assert pool.replay_admit(first, values, ("v", (3, 5)), False) is None
        # Equal-valued different expression: semantic dedup via the
        # re-interned signature; it lands in the shadow bucket.
        assert pool.replay_admit(second, values, ("v", (3, 5)), False) is None
        shadowed = [str(e.expr) for e in pool._shadows.get("e", ())]
        assert str(second) in shadowed


# -- end-to-end domain differentials ----------------------------------


def _tds_options(mode, jobs):
    return TdsOptions(
        dbs=DbsOptions(enum_mode=mode, shard_jobs=jobs, shard_min_cost=0)
    )


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("suite_name, bench_name", DOMAIN_CASES)
def test_suite_benchmarks_sharded_matches_serial(
    suite_name, bench_name, mode
):
    from repro.suites import ALL_SUITES

    benchmark = next(
        b for b in ALL_SUITES[suite_name] if b.name == bench_name
    )
    budget = lambda: Budget(max_seconds=30, max_expressions=250_000)
    serial = benchmark.run(
        budget_factory=budget, options=_tds_options(mode, 0)
    )
    sharded = benchmark.run(
        budget_factory=budget, options=_tds_options(mode, 2)
    )
    assert serial.success and sharded.success
    assert str(sharded.program) == str(serial.program)


@pytest.mark.parametrize("mode", MODES)
def test_pexfun_puzzle_sharded_matches_serial(mode):
    from repro.pex import PUZZLES, play

    puzzle = next(p for p in PUZZLES if p.name == "max-of-two")
    budget = lambda: Budget(max_seconds=10, max_expressions=80_000)
    serial = play(
        puzzle, budget_factory=budget, options=_tds_options(mode, 0)
    )
    sharded = play(
        puzzle, budget_factory=budget, options=_tds_options(mode, 2)
    )
    assert serial.solved and sharded.solved
    assert str(sharded.program) == str(serial.program)


# -- crash retry and fallback -----------------------------------------


class TestRobustness:
    def test_worker_crash_is_retried(self, monkeypatch):
        # Kill shard slot 0's first attempt; the coordinator must
        # respawn the slot, re-send the work unit with a full snapshot,
        # and merge a pool identical to the serial run's.
        examples = [Example(("ab", 2), "abab"), Example(("x", 3), "xxx")]
        serial, _ = run_generations(
            shard_mixed_dsl(), MIXED_SIG, examples, "batched"
        )
        monkeypatch.setenv("REPRO_FAULTS", "crash:0@0")
        sharded, stats = run_generations(
            shard_mixed_dsl(), MIXED_SIG, examples, "batched", jobs=2
        )
        assert counter(stats, "enum.shard.retries") >= 1
        assert counter(stats, "enum.shard.fallbacks") == 0
        assert counter(stats, "enum.shard.generations") > 0
        assert pool_state(sharded) == pool_state(serial)

    def test_exhausted_retries_fall_back_serial(self, monkeypatch):
        # Crash slot 0 on every attempt: the retry budget runs out, the
        # coordinator flips to permanent serial fallback, and the run
        # still produces the exact serial pool (it was never half-merged).
        examples = [Example((1,), 0), Example((3,), 0)]
        serial, _ = run_generations(shard_tiny_dsl(), SIG, examples, "batched")
        monkeypatch.setenv("REPRO_FAULTS", "crash:0@*")
        sharded, stats = run_generations(
            shard_tiny_dsl(), SIG, examples, "batched", jobs=2
        )
        assert counter(stats, "enum.shard.fallbacks") == 1
        assert counter(stats, "enum.shard.generations") == 0
        assert pool_state(sharded) == pool_state(serial)

    def test_unpicklable_pool_falls_back_serial(self):
        # test_enum_batched's tiny_dsl builds its constants from a
        # lambda — the pool snapshot cannot pickle, sharding must shrug
        # and run serial with the parent pool untouched.
        examples = [Example((1,), 0), Example((3,), 0)]
        serial, _ = run_generations(lambda_tiny_dsl(), SIG, examples, "batched")
        sharded, stats = run_generations(
            lambda_tiny_dsl(), SIG, examples, "batched", jobs=2
        )
        assert counter(stats, "enum.shard.fallbacks") == 1
        assert counter(stats, "enum.shard.generations") == 0
        assert pool_state(sharded) == pool_state(serial)


# -- gating and plumbing ----------------------------------------------


class TestGating:
    def test_shard_jobs_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_DBS_JOBS", raising=False)
        monkeypatch.delenv("REPRO_IN_WORKER", raising=False)
        assert _shard_jobs(DbsOptions()) == 0
        assert _shard_jobs(DbsOptions(shard_jobs=1)) == 0
        assert _shard_jobs(DbsOptions(shard_jobs=4)) == 4
        monkeypatch.setenv("REPRO_DBS_JOBS", "3")
        assert _shard_jobs(DbsOptions()) == 3
        # Explicit options beat the environment.
        assert _shard_jobs(DbsOptions(shard_jobs=2)) == 2
        monkeypatch.setenv("REPRO_DBS_JOBS", "junk")
        assert _shard_jobs(DbsOptions()) == 0
        # An ablated grammar has no productions to split.
        monkeypatch.setenv("REPRO_DBS_JOBS", "3")
        assert _shard_jobs(DbsOptions(use_dsl=False)) == 0

    def test_shard_min_cost_resolution(self, monkeypatch):
        from repro.core.engine.shard import DEFAULT_SHARD_MIN_COST

        monkeypatch.delenv("REPRO_DBS_SHARD_MIN_COST", raising=False)
        assert _shard_min_cost(DbsOptions()) == DEFAULT_SHARD_MIN_COST
        monkeypatch.setenv("REPRO_DBS_SHARD_MIN_COST", "0")
        assert _shard_min_cost(DbsOptions()) == 0
        # An explicit option beats the environment.
        assert _shard_min_cost(DbsOptions(shard_min_cost=7)) == 7
        monkeypatch.setenv("REPRO_DBS_SHARD_MIN_COST", "junk")
        assert _shard_min_cost(DbsOptions()) == DEFAULT_SHARD_MIN_COST

    def test_worker_processes_never_nest_sharding(self, monkeypatch):
        monkeypatch.setenv("REPRO_DBS_JOBS", "3")
        monkeypatch.setenv("REPRO_IN_WORKER", "1")
        assert _shard_jobs(DbsOptions()) == 0
        assert _shard_jobs(DbsOptions(shard_jobs=4)) == 0

    def test_small_generations_stay_serial(self):
        # With the default cost gate, a tiny grammar's generations never
        # reach min_cost: workers idle, pool still exact.
        examples = [Example((1,), 0), Example((3,), 0)]
        pool, stats = make_pool(shard_tiny_dsl(), SIG, examples)
        enumerator = Enumerator(pool, enum_mode="batched")
        coord = ShardCoordinator(2, min_cost=10**9)
        coord.attach(pool, enumerator)
        try:
            enumerator.seed([])
            enumerator.advance()
        finally:
            coord.close()
        assert counter(stats, "enum.shard.generations") == 0
        assert counter(stats, "enum.shard.fallbacks") == 0
        serial, _ = run_generations(
            shard_tiny_dsl(), SIG, examples, "batched", advances=1
        )
        assert pool_state(pool) == pool_state(serial)

    def test_shard_plan_worthwhile(self):
        assert ShardPlan(1, 2, 5000, 3, 4096).worthwhile
        assert not ShardPlan(1, 2, 100, 3, 4096).worthwhile

    def test_coordinator_needs_two_jobs(self):
        with pytest.raises(ValueError):
            ShardCoordinator(1)

    def test_adaptive_gate_demotes_fast_productions(self):
        from repro.core.engine.shard import MIN_DISPATCH_SECONDS

        coord = ShardCoordinator(2, min_cost=100)
        # Static floor applies regardless of observations.
        assert not coord.dispatch_worthwhile("p", 50)
        # No rate signal yet: trust the combination-count estimate.
        assert coord.dispatch_worthwhile("p", 200)
        # Observed: 200 combinations enumerated in well under the
        # dispatch overhead — predicted seconds can't pay for a
        # round-trip, keep it serial despite the count.
        coord.observe_production("p", 200, MIN_DISPATCH_SECONDS / 100)
        assert not coord.dispatch_worthwhile("p", 200)
        # An unseen label inherits the global fallback rate...
        assert not coord.dispatch_worthwhile("q", 200)
        # ...until its own serial run shows it is genuinely slow.
        coord.observe_production("q", 200, 50.0)
        assert coord.dispatch_worthwhile("q", 200)

    def test_adaptive_gate_bypassed_when_forced(self):
        # min_cost=0 (tests, REPRO_DBS_SHARD_MIN_COST=0) forces every
        # production to the fleet, whatever the observed rate says.
        coord = ShardCoordinator(2, min_cost=0)
        coord.observe_production("p", 200, 1e-6)
        assert coord.dispatch_worthwhile("p", 1)

    def test_adaptive_gate_ignores_degenerate_observations(self):
        coord = ShardCoordinator(2, min_cost=100)
        coord.observe_production("p", 0, 1.0)
        coord.observe_production("p", 200, 0.0)
        assert coord._rates == {}
        assert coord.dispatch_worthwhile("p", 200)
