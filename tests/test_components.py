"""Tests for the component pool (repro.core.components, §5.1)."""

import pytest

from repro.core.budget import Budget, BudgetExhausted
from repro.core.components import ComponentPool, PoolOptions
from repro.core.dsl import DslBuilder, Example, LambdaSpec, Signature
from repro.core.expr import Call, Const, Lambda, Param, Recurse, Var
from repro.core.types import BOOL, INT, STRING, list_of


def arith_dsl(with_rewrites=True):
    from repro.core.rewrite import parse_rule

    b = DslBuilder("arith", start="e")
    b.nt("e", INT).nt("b", BOOL)
    b.param("e")
    b.constant("e")
    b.fn("e", "Add", ["e", "e"], lambda a, c: a + c)
    b.fn("e", "Mul", ["e", "e"], lambda a, c: a * c)
    b.fn("b", "Lt", ["e", "e"], lambda a, c: a < c)
    b.constants_from(lambda examples: {"e": [0, 1, 2]})
    if with_rewrites:
        b.rewrite(parse_rule("Add(a0, a1) ==> Add(a1, a0)", ["Add"]))
    return b.build()


SIG = Signature("f", (("x", INT),), INT)
EXAMPLES = [Example((2,), 4), Example((5,), 10)]


def make_pool(dsl=None, examples=EXAMPLES, **kwargs):
    return ComponentPool(dsl or arith_dsl(), SIG, examples, **kwargs)


class TestAtoms:
    def test_params_and_constants_seeded(self):
        pool = make_pool()
        atoms = {str(e) for e in pool.expressions("e")}
        assert "x" in atoms
        assert "0" in atoms and "1" in atoms

    def test_seeds_are_admitted(self):
        seed = Call(
            arith_dsl().functions()[0],
            (Param("x", INT, "e"), Param("x", INT, "e")),
            "e",
        )
        pool = make_pool(seeds=[seed])
        assert seed in pool.expressions("e")


class TestGeneration:
    def test_advance_produces_compositions(self):
        pool = make_pool()
        added = pool.advance()
        rendered = {str(e) for e in added}
        assert "Mul(x, x)" in rendered or "Add(x, x)" in rendered

    def test_all_smaller_before_larger(self):
        pool = make_pool()
        gen1 = pool.advance()
        assert all(e.size <= 3 for e in gen1)
        gen2 = pool.advance()
        assert any(e.size == 5 for e in gen2)

    def test_no_duplicate_expressions_across_generations(self):
        pool = make_pool()
        seen = set()
        for expr in pool.all_expressions():
            assert (expr.nt, expr) not in seen
            seen.add((expr.nt, expr))
        for _ in range(2):
            for expr in pool.advance():
                key = (expr.nt, expr)
                assert key not in seen
                seen.add(key)


class TestSemanticDedup:
    def test_equivalent_expressions_merged(self):
        # On inputs x=2 and x=-1, x*x and 2+x coincide... use the paper's
        # example: with those inputs they are identical and merge.
        examples = [Example((2,), 0), Example((-1,), 0)]
        pool = make_pool(examples=examples)
        pool.advance()
        values = {}
        for entry in pool._entries["e"]:
            if entry.values is not None:
                assert entry.values not in values, (
                    f"{entry.expr} duplicates {values[entry.values]}"
                )
                values[entry.values] = entry.expr

    def test_dedup_disabled_keeps_duplicates(self):
        examples = [Example((2,), 0), Example((-1,), 0)]
        deduped = make_pool(examples=examples)
        deduped.advance()
        raw = make_pool(
            examples=examples, options=PoolOptions(semantic_dedup=False)
        )
        raw.advance()
        assert raw.total() > deduped.total()

    def test_error_vector_is_a_signature(self):
        # Two always-crashing expressions share one representative.
        b = DslBuilder("err", start="e")
        b.nt("e", INT)
        b.param("e")
        b.fn("e", "Boom", ["e"], lambda a: 1 // 0)
        b.fn("e", "Bang", ["e"], lambda a: [][0])
        dsl = b.build()
        pool = ComponentPool(dsl, SIG, EXAMPLES)
        pool.advance()
        crashing = [
            e
            for e in pool.expressions("e")
            if str(e).startswith(("Boom", "Bang"))
        ]
        assert len(crashing) == 1


class TestValueVectors:
    def test_closed_expressions_carry_values(self):
        pool = make_pool()
        pool.advance()
        for entry in pool._entries["e"]:
            assert entry.values is not None
            assert len(entry.values) == len(EXAMPLES)

    def test_fast_path_matches_full_evaluation(self):
        from repro.core.evaluator import try_run

        pool = make_pool()
        pool.advance()
        pool.advance()
        for entry in pool._entries["e"][:50]:
            for example, value in zip(EXAMPLES, entry.values):
                assert try_run(entry.expr, ("x",), example.args) == value


class TestRecursionShapes:
    def recurse_dsl(self):
        b = DslBuilder("rec", start="e")
        b.nt("e", INT)
        b.param("e")
        b.fn("e", "Dec", ["e"], lambda a: a - 1)
        b.recurse("e", ["e"])
        return b.build()

    def test_recursive_exprs_pooled_without_values(self):
        pool = ComponentPool(self.recurse_dsl(), SIG, EXAMPLES)
        pool.advance()
        pool.advance()
        recursive = [
            e for e in pool.expressions("e") if "recurse" in str(e)
        ]
        assert recursive
        entries = {id(en.expr) for en in pool._entries["e"] if en.values is None}
        assert entries  # recursion is exempt from value vectors

    def test_constant_arg_recursion_rejected(self):
        pool = ComponentPool(self.recurse_dsl(), SIG, EXAMPLES)
        rejected = pool._offer(Recurse((Const(1, INT, "e"),), "e"))
        assert rejected is None


class TestBudgets:
    def test_expression_budget_enforced(self):
        pool = make_pool(budget=Budget(max_expressions=5))
        for _ in range(3):
            pool.advance()
        assert pool.exhausted
        assert pool.budget.expressions <= 6  # one overshoot charge at most

    def test_advance_returns_partial_on_exhaustion(self):
        pool = make_pool(budget=Budget(max_expressions=30))
        added = pool.advance()
        assert pool.exhausted or added


class TestVarExpressions:
    def lambda_dsl(self):
        b = DslBuilder("lam", start="e")
        b.nt("e", INT)
        b.param("e")
        b.fn("e", "Apply", [LambdaSpec(("w",), (INT,), "e")], lambda f: f(3))
        b.var("e", "w")
        b.fn("e", "Add", ["e", "e"], lambda a, c: a + c)
        return b.build()

    def test_var_atoms_seeded(self):
        pool = ComponentPool(self.lambda_dsl(), SIG, EXAMPLES)
        assert any(isinstance(e, Var) for e in pool.expressions("e"))

    def test_var_size_cap(self):
        pool = ComponentPool(
            self.lambda_dsl(),
            SIG,
            EXAMPLES,
            options=PoolOptions(max_var_expr_size=1),
        )
        pool.advance()
        from repro.core.expr import free_vars

        for expr in pool.expressions("e"):
            if free_vars(expr):
                assert expr.size <= 1

    def test_lambda_bodies_require_var_use(self):
        pool = ComponentPool(self.lambda_dsl(), SIG, EXAMPLES)
        pool.advance()
        pool.advance()
        applies = [e for e in pool.expressions("e") if str(e).startswith("Apply")]
        assert applies
        for expr in applies:
            lam = expr.args[0]
            assert isinstance(lam, Lambda)
            from repro.core.expr import free_vars

            assert "w" in free_vars(lam.body)


class TestNoDslMode:
    def test_type_directed_generation(self):
        pool = make_pool(options=PoolOptions(use_dsl=False))
        pool.advance()
        rendered = {str(e) for e in pool.all_expressions()}
        assert "Add(x, x)" in rendered or "Mul(x, x)" in rendered

    def test_pseudo_nonterminals_by_type(self):
        pool = make_pool(options=PoolOptions(use_dsl=False))
        assert pool.expressions("τ:int")
