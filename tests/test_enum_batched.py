"""Differential tests for batched value-vector enumeration.

``REPRO_ENUM=batched`` (the default) computes each candidate's value
vector straight from its children's cached vectors and dedups on the
interned signature before any expression is materialized; ``classic``
is the per-expression reference pipeline. The two paths must be
observationally identical: the same pool entries in the same order with
the same vectors, the same shadows, and — end to end, across all four
paper domains — the same synthesized programs.
"""

import pytest

from repro.core.budget import Budget
from repro.core.dbs import DbsOptions, DbsStats
from repro.core.dsl import DslBuilder, Example, Signature
from repro.core.engine import Enumerator, PoolStore
from repro.core.engine.enumerator import get_enum_mode, set_enum_mode
from repro.core.expr import Call, Param
from repro.core.tds import TdsOptions
from repro.core.types import INT, STRING

SIG = Signature("f", (("x", INT),), INT)


def _neg(v):
    return -v


def _add(a, c):
    return a + c


def _mul(a, c):
    return a * c


def _repeat(s, n):
    return s * n


def tiny_dsl():
    b = DslBuilder("tiny", start="e")
    b.nt("e", INT)
    b.fn("e", "Neg", ["e"], _neg)
    b.fn("e", "Add", ["e", "e"], _add)
    b.fn("e", "Mul", ["e", "e"], _mul)
    b.param("e")
    b.constant("e")
    b.constants_from(lambda examples: {"e": [0, 1, 2]})
    return b.build()


def mixed_dsl():
    """Two nonterminals and a value-size-sensitive component, so the
    differential also covers cross-nt slots and ERROR columns."""
    b = DslBuilder("mixed", start="s")
    b.nt("s", STRING).nt("n", INT)
    b.fn("s", "Concat", ["s", "s"], lambda a, c: a + c)
    b.fn("s", "Repeat", ["s", "n"], _repeat)
    b.fn("n", "Add", ["n", "n"], _add)
    b.fn("n", "Len", ["s"], len)
    b.param("s")
    b.param("n")
    b.constants_from(lambda examples: {"s": ["-"], "n": [2]})
    return b.build()


def make_pool(dsl, signature, examples, max_expressions=10**7):
    stats = DbsStats()
    budget = Budget(max_seconds=60.0, max_expressions=max_expressions)
    pool = PoolStore(
        dsl,
        signature,
        list(examples),
        budget=budget,
        metrics=stats.registry,
    )
    return pool, stats


def pool_state(pool):
    """Everything observable about a pool: ordered entries per nt with
    generation + vector, plus the shadow buckets."""
    entries = {
        nt: [
            (str(e.expr), e.generation, e.values)
            for e in pool.iter_entries(nt)
        ]
        for nt in sorted(pool._entries)
    }
    shadows = {
        nt: [(str(e.expr), e.values) for e in bucket]
        for nt, bucket in sorted(pool._shadows.items())
        if bucket
    }
    return entries, shadows


def run_generations(dsl, signature, examples, mode, advances=2, extend=None):
    pool, _ = make_pool(dsl, signature, examples)
    enumerator = Enumerator(pool, enum_mode=mode)
    enumerator.seed([])
    for _ in range(advances):
        enumerator.advance()
    if extend is not None:
        pool.extend_examples([extend])
        enumerator.seed([])
        enumerator.advance()
    return pool


class TestPoolDifferential:
    @pytest.mark.parametrize("extend", [None, Example((5,), 0)])
    def test_tiny_dsl_same_pool(self, extend):
        examples = [Example((1,), 0), Example((3,), 0)]
        batched = run_generations(
            tiny_dsl(), SIG, examples, "batched", extend=extend
        )
        classic = run_generations(
            tiny_dsl(), SIG, examples, "classic", extend=extend
        )
        assert pool_state(batched) == pool_state(classic)
        assert batched.generation == classic.generation

    def test_mixed_dsl_same_pool(self):
        signature = Signature("f", (("s", STRING), ("n", INT)), STRING)
        examples = [Example(("ab", 2), "abab"), Example(("x", 3), "xxx")]
        batched = run_generations(mixed_dsl(), signature, examples, "batched")
        classic = run_generations(mixed_dsl(), signature, examples, "classic")
        assert pool_state(batched) == pool_state(classic)

    def test_budget_death_matches(self):
        # Both modes must charge the budget per candidate combination in
        # the same order, so a budget that dies mid-generation leaves
        # identical partial pools.
        examples = [Example((1,), 0), Example((3,), 0)]
        pools = []
        for mode in ("batched", "classic"):
            pool, _ = make_pool(
                tiny_dsl(), SIG, examples, max_expressions=120
            )
            enumerator = Enumerator(pool, enum_mode=mode)
            enumerator.seed([])
            enumerator.advance()
            enumerator.advance()
            assert pool.exhausted
            pools.append(pool)
        assert pool_state(pools[0]) == pool_state(pools[1])


DOMAIN_CASES = [
    ("strings", "extract-domain"),
    ("tables", "transpose"),
    ("xml", "add-classes"),
]


def _tds_options(mode):
    return TdsOptions(dbs=DbsOptions(enum_mode=mode))


@pytest.mark.parametrize("suite_name, bench_name", DOMAIN_CASES)
def test_suite_benchmarks_batched_matches_classic(suite_name, bench_name):
    from repro.suites import ALL_SUITES

    benchmark = next(
        b for b in ALL_SUITES[suite_name] if b.name == bench_name
    )
    budget = lambda: Budget(max_seconds=20, max_expressions=250_000)
    batched = benchmark.run(
        budget_factory=budget, options=_tds_options("batched")
    )
    classic = benchmark.run(
        budget_factory=budget, options=_tds_options("classic")
    )
    assert batched.success and classic.success
    assert str(batched.program) == str(classic.program)


def test_pexfun_puzzle_batched_matches_classic():
    from repro.pex import PUZZLES, play

    puzzle = next(p for p in PUZZLES if p.name == "max-of-two")
    budget = lambda: Budget(max_seconds=8, max_expressions=80_000)
    batched = play(puzzle, budget_factory=budget, options=_tds_options("batched"))
    classic = play(puzzle, budget_factory=budget, options=_tds_options("classic"))
    assert batched.solved and classic.solved
    assert str(batched.program) == str(classic.program)


# -- mode plumbing -----------------------------------------------------


def test_mode_switch_round_trips():
    previous = set_enum_mode("classic")
    try:
        assert get_enum_mode() == "classic"
        assert set_enum_mode("batched") == "classic"
        assert get_enum_mode() == "batched"
    finally:
        set_enum_mode(previous)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        set_enum_mode("vectorized")
    pool, _ = make_pool(tiny_dsl(), SIG, [Example((1,), 0)])
    enumerator = Enumerator(pool, enum_mode="nope")
    enumerator.seed([])
    with pytest.raises(ValueError):
        enumerator.advance()


def test_cli_flag_sets_mode():
    import os

    from repro import cli

    previous = get_enum_mode()
    try:
        code = cli.main(["--enum", "classic", "domains"])
        assert code == 0
        assert get_enum_mode() == "classic"
        assert os.environ.get("REPRO_ENUM") == "classic"
    finally:
        set_enum_mode(previous)
        os.environ.pop("REPRO_ENUM", None)


# -- extend/revival memoization (the satellite fixes) ------------------


def test_same_pass_shadow_not_double_widened():
    """An entry demoted to the shadow list *during* an extension pass is
    already widened and stamped with the current epoch; the revival
    sweep at the end of the same pass must not widen it again (it used
    to, corrupting the vector with duplicate columns)."""
    dsl = tiny_dsl()
    fns = {f.name: f for f in dsl.functions()}
    pool, _ = make_pool(dsl, SIG, [Example((0,), 0)])
    x = Param("x", INT, "e")
    neg_x = Call(fns["Neg"], (x,), "e")
    assert pool.offer(x) is not None
    assert pool.offer(neg_x) is None  # Neg(x) == x on input 0: shadowed

    # Reproduce the extension pass's state just before _revive_shadows
    # for a same-pass demotion: examples appended, epoch bumped, intern
    # table swapped, survivor and shadow both widened and stamped.
    appended = [Example((3,), 0)]
    pool.examples.extend(appended)
    pool.example_epoch += 1
    pool._sig_intern = {}
    survivor = next(iter(pool.iter_entries("e")))
    survivor.values = (0, 3)
    survivor.epoch = pool.example_epoch
    pool._widen_sig(survivor, "e", (3,), appended)
    pool._seen_semantic["e"] = {survivor.sig}
    shadow = pool._shadows["e"][0]
    shadow.values = (0, -3)
    shadow.epoch = pool.example_epoch
    pool._widen_sig(shadow, "e", (-3,), appended)

    revived = pool._revive_shadows(appended, {})
    assert revived == 1
    entry = next(e for e in pool.iter_entries("e") if e.expr is neg_x)
    # The guard: still one column per example, not three.
    assert entry.values == (0, -3)


def test_preexisting_shadow_still_widened_on_extend():
    dsl = tiny_dsl()
    fns = {f.name: f for f in dsl.functions()}
    pool, _ = make_pool(dsl, SIG, [Example((0,), 0)])
    x = Param("x", INT, "e")
    neg_x = Call(fns["Neg"], (x,), "e")
    pool.offer(x)
    pool.offer(neg_x)
    report = pool.extend_examples([Example((3,), 0)])
    assert report["revived"] == 1
    entry = next(e for e in pool.iter_entries("e") if e.expr is neg_x)
    assert entry.values == (0, -3)
    assert entry.epoch == pool.example_epoch
    assert len(entry.values) == len(pool.examples)


def test_extension_stamps_epoch_and_interns_sigs():
    pool = run_generations(
        tiny_dsl(),
        SIG,
        [Example((1,), 0), Example((3,), 0)],
        "batched",
        extend=Example((5,), 0),
    )
    interned = pool._sig_intern
    for nt in pool._entries:
        for entry in pool.iter_entries(nt):
            if entry.values is not None:
                assert len(entry.values) == len(pool.examples)
                assert entry.epoch == pool.example_epoch
                if entry.sig is not None:
                    # Live interned ids all resolve through the current
                    # (post-swap) table.
                    assert entry.sig in interned.values()


# -- the new counters, end to end --------------------------------------


@pytest.mark.trace_smoke
def test_batched_counters_reach_trace_report(tmp_path):
    from repro.core.tds import TdsSession
    from repro.obs import JsonlTracer, report_from_file, tracing

    path = str(tmp_path / "batched.jsonl")
    tracer = JsonlTracer(path)
    session = TdsSession(
        SIG,
        tiny_dsl(),
        budget_factory=lambda: Budget(
            max_seconds=15.0, max_expressions=40_000
        ),
        options=_tds_options("batched"),
    )
    with tracing(tracer):
        session.add_example(Example((3,), 7))
        session.add_example(Example((5,), 11))
    tracer.flush()
    assert session.satisfies_all()

    report = report_from_file(path)
    assert report.counters.get("enum.batched", 0) > 0
    assert report.counters.get("enum.lazy_materialized", 0) > 0
    assert report.counters.get("enum.sig_interned", 0) > 0
    # Batched productions report under their own phase, with per-
    # production rows intact.
    assert any(row.phase == "enum" for row in report.phases)
    assert any("<-" in row.production for row in report.productions)
