"""Differential tests for batched sampled signatures.

In batched enumeration mode ``PoolStore`` fingerprints free-variable
candidates from identity-memoized sampled-environment grids
(``_sampled_signature_fast``) instead of re-evaluating the whole tree
once per ``(example, binding)`` cell per candidate. The fast path must
be observationally identical to the per-candidate reference
(``_sampled_signature``): the same admissions in the same order, the
same shadow buckets, and the same dedup/rejection counters.

Two comparisons, on the real strings and pexfun domains:

* fast grids vs the per-candidate reference *within* batched mode —
  everything must match byte for byte, counters included, because only
  the signature computation differs;
* batched vs classic enumeration — entries and shadows must match
  (the identical-candidate-stream invariant of ``test_enum_batched``);
  dedup *counters* legitimately differ across modes because the batched
  pipeline dedups value vectors before materializing expressions.
"""

import pytest

from repro.core.budget import Budget
from repro.core.dbs import DbsStats
from repro.core.dsl import Example, Signature
from repro.core.engine import Enumerator, PoolStore
from repro.core.types import STRING
from repro.domains.registry import get_domain

STRINGS_SIG = Signature("f", (("v", STRING),), STRING)
STRINGS_EXAMPLES = [
    Example(("John Smith",), "J.S."),
    Example(("Jane Doe",), "J.D."),
]


def _pexfun_case():
    from repro.pex import PUZZLES

    puzzle = next(p for p in PUZZLES if p.name == "max-of-two")
    examples = [
        Example(args, puzzle.reference(*args)) for args in puzzle.seeds
    ]
    return puzzle.signature, examples


def _domain_case(name):
    if name == "strings":
        return get_domain("strings").dsl(), STRINGS_SIG, STRINGS_EXAMPLES
    signature, examples = _pexfun_case()
    return get_domain("pexfun").dsl(), signature, examples


def _run(name, mode, advances=3, max_expressions=20_000):
    dsl, signature, examples = _domain_case(name)
    stats = DbsStats()
    pool = PoolStore(
        dsl,
        signature,
        list(examples),
        budget=Budget(max_seconds=120.0, max_expressions=max_expressions),
        metrics=stats.registry,
    )
    enumerator = Enumerator(pool, enum_mode=mode)
    enumerator.seed([])
    for _ in range(advances):
        enumerator.advance()
    return pool, stats


def _pool_state(pool):
    """Everything observable about a pool: ordered entries per nt with
    generation + vector, plus the shadow buckets."""
    entries = {
        nt: [
            (str(e.expr), e.generation, e.values)
            for e in pool.iter_entries(nt)
        ]
        for nt in sorted(pool._entries)
    }
    shadows = {
        nt: [(str(e.expr), e.values) for e in bucket]
        for nt, bucket in sorted(pool._shadows.items())
        if bucket
    }
    return entries, shadows


def _counters(stats):
    """All run counters except wall-clock gauges."""
    return {
        name: value
        for name, value in stats.registry.snapshot_flat().items()
        if "seconds" not in name and "elapsed" not in name
    }


@pytest.mark.parametrize("name", ["strings", "pexfun"])
def test_fast_sampled_signatures_match_reference(name, monkeypatch):
    """Within batched mode, grids vs per-candidate signatures: only the
    fingerprint computation differs, so pool state *and* every counter
    must be byte-identical."""
    fast_pool, fast_stats = _run(name, "batched")
    monkeypatch.setattr(
        PoolStore,
        "_sampled_signature_fast",
        lambda self, expr, adapter: self._sampled_signature(expr, adapter),
    )
    ref_pool, ref_stats = _run(name, "batched")
    assert _pool_state(fast_pool) == _pool_state(ref_pool)
    assert _counters(fast_stats) == _counters(ref_stats)


@pytest.mark.parametrize("name", ["strings", "pexfun"])
def test_enum_modes_agree_on_pool_state(name):
    """Classic vs batched enumeration on the real domains: the modes
    must admit the same entries and shadow the same losers (dedup
    counters differ across modes by design — the batched pipeline
    rejects value vectors before materialization)."""
    batched_pool, _ = _run(name, "batched")
    classic_pool, _ = _run(name, "classic")
    assert _pool_state(batched_pool) == _pool_state(classic_pool)
