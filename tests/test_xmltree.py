"""Tests for the XML tree substrate (repro.domains.xmltree)."""

import pytest

from repro.domains.xmltree import XmlNode, XmlParseError, parse_xml, serialize


class TestNode:
    def test_attrs_canonicalized(self):
        a = XmlNode("p", (("b", "2"), ("a", "1")))
        b = XmlNode("p", (("a", "1"), ("b", "2")))
        assert a == b
        assert hash(a) == hash(b)

    def test_attr_access(self):
        node = XmlNode("p", (("class", "x"),))
        assert node.attr("class") == "x"
        assert node.has_attr("class")
        assert not node.has_attr("id")
        with pytest.raises(KeyError):
            node.attr("id")

    def test_text_concatenates_subtree(self):
        node = parse_xml("<d><p>a<b>b</b></p><p>c</p></d>")
        assert node.text() == "abc"

    def test_elements_skips_text(self):
        node = parse_xml("<d>text<p/>more<q/></d>")
        assert [e.tag for e in node.elements()] == ["p", "q"]

    def test_descendants_preorder(self):
        node = parse_xml("<a><b><c/></b><d/></a>")
        assert [n.tag for n in node.descendants()] == ["b", "c", "d"]

    def test_find_all(self):
        node = parse_xml("<d><p/><q><p/></q></d>")
        assert len(node.find_all("p")) == 2

    def test_functional_updates(self):
        node = XmlNode("p")
        updated = node.with_attr("class", "x")
        assert updated.attr("class") == "x"
        assert not node.has_attr("class")  # original untouched
        assert updated.without_attr("class") == node
        assert node.with_tag("q").tag == "q"
        assert node.append(XmlNode("i")).elements()[0].tag == "i"


class TestSerialize:
    def test_self_closing_empty(self):
        assert serialize(XmlNode("br")) == "<br/>"

    def test_attributes_sorted(self):
        node = XmlNode("p", (("z", "1"), ("a", "2")))
        assert serialize(node) == '<p a="2" z="1"/>'

    def test_text_escaped(self):
        node = XmlNode("p", (), ("a<b&c",))
        assert serialize(node) == "<p>a&lt;b&amp;c</p>"

    def test_attr_quotes_escaped(self):
        node = XmlNode("p", (("t", 'say "hi"'),))
        assert '&quot;' in serialize(node)


class TestParse:
    def test_roundtrip(self):
        source = '<doc><div id="ch1"><p name="a1">1st.</p></div></doc>'
        assert serialize(parse_xml(source)) == source

    def test_single_quoted_attrs(self):
        node = parse_xml("<p class='a'>x</p>")
        assert node.attr("class") == "a"

    def test_whitespace_between_elements_dropped(self):
        node = parse_xml("<d>\n  <p>x</p>\n  <p>y</p>\n</d>")
        assert len(node.elements()) == 2
        assert node.text() == "xy"

    def test_significant_text_kept(self):
        node = parse_xml("<p>hello world</p>")
        assert node.text() == "hello world"

    def test_declaration_and_comments_skipped(self):
        node = parse_xml("<?xml version='1.0'?><!-- hi --><d><!-- x --><p/></d>")
        assert node.tag == "d"
        assert len(node.elements()) == 1

    def test_entities_unescaped(self):
        node = parse_xml("<p>a&lt;b&amp;c</p>")
        assert node.text() == "a<b&c"

    def test_mismatched_close_rejected(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a><b></a></b>")

    def test_unterminated_rejected(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a><b/>")

    def test_trailing_content_rejected(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a/><b/>")

    def test_nested_depth(self):
        source = "<a>" * 20 + "x" + "</a>" * 20
        node = parse_xml(source)
        assert node.text() == "x"

    def test_parse_serialize_fixpoint(self):
        source = "<doc><p class='a'>1</p><p>2</p><br/></doc>"
        once = serialize(parse_xml(source))
        assert serialize(parse_xml(once)) == once
