"""Tests for the textual DSL definition language (repro.core.dsl_parser)."""

import pytest

from repro.core.budget import Budget
from repro.core.dsl import Example, Signature
from repro.core.dsl_parser import DslParseError, parse_dsl
from repro.core.tds import tds
from repro.core.types import BOOL, CHAR, INT, STRING

NAMESPACE = {
    "CharAt": lambda s, n: s[n],
    "ToUpper": lambda c: c.upper(),
    "Word": lambda s, n: s.split(" ")[n],
    "Add": lambda a, b: a + b,
    "Neg": lambda a: -a,
    "Lt": lambda a, b: a < b,
    "Apply": lambda f: f(2),
}

WALKTHROUGH = """
dsl "walkthrough";
start C;
nonterminal C : char;
nonterminal S : str;
nonterminal N : int;
C ::= CharAt(S, N) | ToUpper(C);
S ::= Word(S, N) | _PARAM;
N ::= _CONSTANT;
"""


class TestParsing:
    def test_walkthrough_shape(self):
        dsl = parse_dsl(WALKTHROUGH, NAMESPACE)
        assert dsl.name == "walkthrough"
        assert dsl.start == "C"
        assert dsl.type_of("C") == CHAR
        assert sorted(f.name for f in dsl.functions()) == [
            "CharAt",
            "ToUpper",
            "Word",
        ]

    def test_param_and_constant_rules(self):
        dsl = parse_dsl(WALKTHROUGH, NAMESPACE)
        kinds = {(p.nt, p.kind) for p in dsl.productions}
        assert ("S", "param") in kinds
        assert ("N", "constant") in kinds

    def test_comments_ignored(self):
        dsl = parse_dsl(
            "// the demo\ndsl d; start e;\nnonterminal e : int;\n"
            "e ::= _PARAM; // params only\n",
            {},
        )
        assert dsl.start == "e"

    def test_unit_rule(self):
        dsl = parse_dsl(
            "start a; nonterminal a : int; nonterminal b : int;"
            "a ::= b; b ::= _PARAM;",
            {},
        )
        assert set(dsl.expansion("a")) == {"a", "b"}

    def test_conditional_rule(self):
        dsl = parse_dsl(
            "start P; nonterminal P : int; nonterminal e : int;"
            "nonterminal b : bool;"
            "P ::= __CONDITIONAL(b, e); e ::= _PARAM;"
            "b ::= Lt(e, e);",
            NAMESPACE,
        )
        assert dsl.conditionals[0].guard_nt == "b"

    def test_loop_rules(self):
        dsl = parse_dsl(
            "start P; nonterminal P : list<int>; nonterminal e : int;"
            "P ::= __FOREACH(e); e ::= _PARAM;",
            {},
        )
        assert dsl.loops[0].kind == "foreach"

    def test_recurse_and_lasy_fn(self):
        dsl = parse_dsl(
            "start e; nonterminal e : int;"
            "e ::= _PARAM | _RECURSE(e) | _LASY_FN(e);",
            {},
        )
        kinds = {p.kind for p in dsl.productions}
        assert {"param", "recurse", "lasy_fn"} <= kinds

    def test_lambda_argument(self):
        dsl = parse_dsl(
            "start e; nonterminal e : int; lambdavar w : int;"
            "e ::= Apply(lambda w: e) | w | _PARAM;",
            NAMESPACE,
        )
        assert dsl.lambda_vars == {"w": INT}

    def test_rewrite_rules_attached(self):
        dsl = parse_dsl(
            "start e; nonterminal e : int;"
            "e ::= Add(e, e) | _PARAM;"
            "rewrite Add(a0, a1) ==> Add(a1, a0);",
            NAMESPACE,
        )
        assert len(dsl.rewrites) == 1

    def test_alternatives_with_nested_parens(self):
        dsl = parse_dsl(
            "start e; nonterminal e : int;"
            "e ::= Add(e, e) | Neg(e) | _PARAM;",
            NAMESPACE,
        )
        assert len([p for p in dsl.productions if p.kind == "call"]) == 2


class TestErrors:
    def test_missing_start(self):
        with pytest.raises(DslParseError):
            parse_dsl("nonterminal e : int; e ::= _PARAM;", {})

    def test_undeclared_nonterminal(self):
        with pytest.raises(DslParseError):
            parse_dsl("start e; e ::= _PARAM;", {})

    def test_unknown_component(self):
        with pytest.raises(DslParseError):
            parse_dsl(
                "start e; nonterminal e : int; e ::= Mystery(e);", {}
            )

    def test_bad_nonterminal_declaration(self):
        with pytest.raises(DslParseError):
            parse_dsl("start e; nonterminal e;", {})

    def test_unterminated_statement(self):
        with pytest.raises(DslParseError):
            parse_dsl("start e; nonterminal e : int", {})

    def test_undeclared_lambda_var(self):
        with pytest.raises(DslParseError):
            parse_dsl(
                "start e; nonterminal e : int;"
                "e ::= Apply(lambda w: e);",
                NAMESPACE,
            )

    def test_unknown_arg_nonterminal(self):
        with pytest.raises(DslParseError):
            parse_dsl(
                "start e; nonterminal e : int; e ::= Add(e, zz);",
                NAMESPACE,
            )


class TestEndToEnd:
    def test_textual_dsl_drives_tds(self):
        dsl = parse_dsl(
            WALKTHROUGH,
            NAMESPACE,
            constant_provider=lambda examples: {"N": [0, 1]},
        )
        result = tds(
            Signature("f", (("a", STRING),), CHAR),
            [
                Example(("Sam Smith",), "S"),
                Example(("Amy Smith",), "S"),
                Example(("jane doe",), "D"),
            ],
            dsl,
            budget_factory=lambda: Budget(
                max_seconds=10, max_expressions=40_000
            ),
        )
        assert result.success
        assert str(result.program) == "ToUpper(CharAt(Word(a, 1), 0))"
